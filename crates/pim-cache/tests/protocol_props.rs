//! Property-based tests of the PIM protocol.
//!
//! Two harnesses:
//!
//! * a **shadow-model** harness restricted to operations with plain
//!   load/store semantics (`R`, `W`, `DW`, `RI`, `LR`/`UW`/`U`): every
//!   read must return the latest write to that address. `DW` marks the
//!   rest of its block *undefined* in the shadow (the hardware allocates
//!   without fetching, so old contents are legitimately destroyed).
//! * a **chaos** harness over the full operation set (including the
//!   purge-flavoured `ER`/`RP`, whose contracts the random driver
//!   deliberately violates): no panics, no protocol errors, and the
//!   coherence invariants must hold after every step.

use pim_cache::{CacheGeometry, Outcome, PimSystem, SystemConfig};
use pim_trace::{Addr, MemOp, PeId, StorageArea, Word};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// A scripted operation from the generator.
#[derive(Debug, Clone, Copy)]
enum Step {
    Read { pe: u32, slot: u64 },
    Write { pe: u32, slot: u64, value: Word },
    DirectWrite { pe: u32, slot: u64, value: Word },
    ReadInvalidate { pe: u32, slot: u64 },
    ExclusiveRead { pe: u32, slot: u64 },
    ReadPurge { pe: u32, slot: u64 },
    LockWrite { pe: u32, slot: u64, value: Word },
}

const PES: u32 = 4;
const SLOTS: u64 = 48; // small space → heavy block contention

fn tiny_system() -> PimSystem {
    PimSystem::new(SystemConfig {
        pes: PES,
        // 2 sets × 2 ways × 4-word blocks = 32 words: constant evictions.
        geometry: CacheGeometry::with_shape(32, 4, 2),
        ..SystemConfig::default()
    })
}

fn heap_addr(sys: &PimSystem, slot: u64) -> Addr {
    sys.area_map().base(StorageArea::Heap) + slot
}

fn step_strategy(ops: &'static [&'static str]) -> impl Strategy<Value = Step> {
    (
        0..PES,
        0..SLOTS,
        any::<u16>(),
        proptest::sample::select(ops.to_vec()),
    )
        .prop_map(|(pe, slot, v, op)| {
            let value = Word::from(v) + 1;
            match op {
                "r" => Step::Read { pe, slot },
                "w" => Step::Write { pe, slot, value },
                "dw" => Step::DirectWrite { pe, slot, value },
                "ri" => Step::ReadInvalidate { pe, slot },
                "er" => Step::ExclusiveRead { pe, slot },
                "rp" => Step::ReadPurge { pe, slot },
                "lw" => Step::LockWrite { pe, slot, value },
                _ => unreachable!(),
            }
        })
}

/// Runs `op` for `pe`, retrying through `LockBusy` by immediately having
/// the holder release (single-threaded stand-in for the busy wait).
fn run_to_completion(
    sys: &mut PimSystem,
    pe: PeId,
    op: MemOp,
    addr: Addr,
    data: Option<Word>,
    held: &mut HashMap<u32, HashSet<Addr>>,
) -> Word {
    for _ in 0..8 {
        match sys.access(pe, op, addr, data).expect("no protocol misuse") {
            Outcome::Done { value, .. } => return value,
            Outcome::LockBusy { holder } => {
                // Drain every lock the holder has so progress is possible.
                let locks: Vec<Addr> = held
                    .get(&holder.0)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                assert!(!locks.is_empty(), "refused by a PE holding no locks");
                for l in locks {
                    sys.access(holder, MemOp::Unlock, l, None)
                        .expect("holder can unlock");
                    held.get_mut(&holder.0).unwrap().remove(&l);
                }
            }
        }
    }
    panic!("lock retry did not converge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shadow-model check: loads observe the latest store.
    #[test]
    fn reads_return_latest_writes(steps in proptest::collection::vec(
        step_strategy(&["r", "w", "dw", "ri", "lw"]), 1..200))
    {
        let mut sys = tiny_system();
        // shadow: None = undefined (destroyed by a DW allocation).
        let mut shadow: HashMap<Addr, Option<Word>> = HashMap::new();
        let mut held: HashMap<u32, HashSet<Addr>> = HashMap::new();
        let block = sys.config().geometry.block_words;

        for step in steps {
            match step {
                Step::Read { pe, slot } | Step::ReadInvalidate { pe, slot } => {
                    let addr = heap_addr(&sys, slot);
                    let op = if matches!(step, Step::Read { .. }) {
                        MemOp::Read
                    } else {
                        MemOp::ReadInvalidate
                    };
                    let got = run_to_completion(&mut sys, PeId(pe), op, addr, None, &mut held);
                    match shadow.get(&addr) {
                        Some(Some(expect)) => prop_assert_eq!(got, *expect),
                        Some(None) => {} // undefined after DW allocation
                        None => prop_assert_eq!(got, 0, "untouched memory reads 0"),
                    }
                }
                Step::Write { pe, slot, value } => {
                    let addr = heap_addr(&sys, slot);
                    run_to_completion(&mut sys, PeId(pe), MemOp::Write, addr, Some(value), &mut held);
                    shadow.insert(addr, Some(value));
                }
                Step::DirectWrite { pe, slot, value } => {
                    let addr = heap_addr(&sys, slot);
                    run_to_completion(&mut sys, PeId(pe), MemOp::DirectWrite, addr, Some(value), &mut held);
                    shadow.insert(addr, Some(value));
                    // A boundary-miss DW allocates without fetching: the
                    // other words of the block become undefined unless the
                    // controller degraded to W (hit or off-boundary), which
                    // we conservatively treat as undefined too only when on
                    // a boundary. Off-boundary DW is exactly W.
                    if addr.is_multiple_of(block) {
                        for w in 1..block {
                            shadow.entry(addr + w).or_insert(Some(0));
                            // only mark undefined if the allocation could
                            // have happened (we cannot see hit/miss from
                            // here, so be conservative):
                            shadow.insert(addr + w, None);
                        }
                    }
                }
                Step::LockWrite { pe, slot, value } => {
                    let addr = heap_addr(&sys, slot);
                    if held.values().any(|s| s.contains(&addr)) {
                        // Another (or this) PE holds it in our script;
                        // skip to keep the script race-free.
                        continue;
                    }
                    let got = run_to_completion(&mut sys, PeId(pe), MemOp::LockRead, addr, None, &mut held);
                    match shadow.get(&addr) {
                        Some(Some(expect)) => prop_assert_eq!(got, *expect),
                        Some(None) => {}
                        None => prop_assert_eq!(got, 0),
                    }
                    held.entry(pe).or_default().insert(addr);
                    // Write-unlock immediately (short KL1-style hold).
                    sys.access(PeId(pe), MemOp::WriteUnlock, addr, Some(value))
                        .expect("uw after lr");
                    held.get_mut(&pe).unwrap().remove(&addr);
                    shadow.insert(addr, Some(value));
                }
                Step::ExclusiveRead { .. } | Step::ReadPurge { .. } => unreachable!(),
            }
            sys.check_coherence_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
        }
    }

    /// Chaos check: arbitrary command mixes (purge contracts violated on
    /// purpose) never break coherence invariants or panic.
    #[test]
    fn invariants_survive_arbitrary_command_mixes(steps in proptest::collection::vec(
        step_strategy(&["r", "w", "dw", "ri", "er", "rp", "lw"]), 1..300))
    {
        let mut sys = tiny_system();
        let mut held: HashMap<u32, HashSet<Addr>> = HashMap::new();

        for step in steps {
            let (pe, op, slot, data) = match step {
                Step::Read { pe, slot } => (pe, MemOp::Read, slot, None),
                Step::Write { pe, slot, value } => (pe, MemOp::Write, slot, Some(value)),
                Step::DirectWrite { pe, slot, value } => (pe, MemOp::DirectWrite, slot, Some(value)),
                Step::ReadInvalidate { pe, slot } => (pe, MemOp::ReadInvalidate, slot, None),
                Step::ExclusiveRead { pe, slot } => (pe, MemOp::ExclusiveRead, slot, None),
                Step::ReadPurge { pe, slot } => (pe, MemOp::ReadPurge, slot, None),
                Step::LockWrite { pe, slot, value } => (pe, MemOp::LockRead, slot, Some(value)),
            };
            let addr = heap_addr(&sys, slot);
            if op == MemOp::LockRead {
                if held.values().any(|s| s.contains(&addr)) {
                    continue;
                }
                run_to_completion(&mut sys, PeId(pe), MemOp::LockRead, addr, None, &mut held);
                held.entry(pe).or_default().insert(addr);
                sys.access(PeId(pe), MemOp::WriteUnlock, addr, data).unwrap();
                held.get_mut(&pe).unwrap().remove(&addr);
            } else {
                run_to_completion(&mut sys, PeId(pe), op, addr, data, &mut held);
            }
            sys.check_coherence_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
        }

        // Lock accounting is self-consistent at the end.
        let ls = sys.lock_stats();
        prop_assert!(ls.lr_hits >= ls.lr_hits_exclusive);
        prop_assert!(ls.lr_total >= ls.lr_hits);
        prop_assert_eq!(ls.lr_total, ls.unlock_total, "every LR was UW'd");
    }
}
