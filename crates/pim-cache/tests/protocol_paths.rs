//! Scenario tests exercising every protocol path of paper Section 3.
//!
//! The system under test is a small two-to-four PE `PimSystem`; addresses
//! are chosen inside the heap/goal/communication areas of the standard map
//! so the optimized commands are honoured by the default `OptMask::all()`.

use pim_cache::{
    BlockState, CacheGeometry, OptMask, Outcome, PimSystem, ProtocolError, SystemConfig,
};
use pim_trace::{MemOp, PeId, StorageArea};

const P0: PeId = PeId(0);
const P1: PeId = PeId(1);
const P2: PeId = PeId(2);

fn system(pes: u32) -> PimSystem {
    PimSystem::new(SystemConfig {
        pes,
        ..SystemConfig::default()
    })
}

fn heap(sys: &PimSystem, offset: u64) -> u64 {
    sys.area_map().base(StorageArea::Heap) + offset
}

fn done(outcome: Outcome) -> (u64, u64, bool) {
    match outcome {
        Outcome::Done {
            value,
            bus_cycles,
            hit,
            ..
        } => (value, bus_cycles, hit),
        Outcome::LockBusy { holder } => panic!("unexpectedly refused by {holder}"),
    }
}

#[test]
fn read_miss_fetches_from_memory_as_exclusive_clean() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.poke(a, 77);
    let (value, cycles, hit) = done(sys.access(P0, MemOp::Read, a, None).unwrap());
    assert_eq!(value, 77);
    assert_eq!(cycles, 13, "swap-in from memory");
    assert!(!hit);
    assert_eq!(sys.cache_state(P0, a), BlockState::Ec);
    sys.check_coherence_invariants().unwrap();
}

#[test]
fn read_hit_is_free_and_preserves_state() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Read, a, None).unwrap();
    let (_, cycles, hit) = done(sys.access(P0, MemOp::Read, a + 1, None).unwrap());
    assert_eq!(cycles, 0);
    assert!(hit);
    assert_eq!(sys.cache_state(P0, a), BlockState::Ec);
}

#[test]
fn write_miss_fetches_exclusive_modified() {
    let mut sys = system(2);
    let a = heap(&sys, 4);
    let (_, cycles, hit) = done(sys.access(P0, MemOp::Write, a, Some(5)).unwrap());
    assert_eq!(cycles, 13);
    assert!(!hit);
    assert_eq!(sys.cache_state(P0, a), BlockState::Em);
    assert_eq!(done(sys.access(P0, MemOp::Read, a, None).unwrap()).0, 5);
}

#[test]
fn write_hit_on_exclusive_clean_upgrades_silently() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Read, a, None).unwrap();
    assert_eq!(sys.cache_state(P0, a), BlockState::Ec);
    let (_, cycles, hit) = done(sys.access(P0, MemOp::Write, a, Some(9)).unwrap());
    assert_eq!(cycles, 0, "EC→EM needs no bus");
    assert!(hit);
    assert_eq!(sys.cache_state(P0, a), BlockState::Em);
}

#[test]
fn dirty_read_sharing_creates_sm_owner_without_memory_update() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a, Some(42)).unwrap(); // P0: EM
    let busy_before = sys.bus_stats().memory_busy_cycles();
    let (value, cycles, _) = done(sys.access(P1, MemOp::Read, a, None).unwrap());
    assert_eq!(value, 42);
    assert_eq!(cycles, 7, "cache-to-cache without swap-out");
    // The PIM point of difference from Illinois: the dirty data is NOT
    // copied back; the supplier keeps ownership in SM.
    assert_eq!(sys.cache_state(P0, a), BlockState::Sm);
    assert_eq!(sys.cache_state(P1, a), BlockState::Shared);
    assert_eq!(
        sys.bus_stats().memory_busy_cycles(),
        busy_before,
        "the transfer left memory untouched"
    );
    sys.check_coherence_invariants().unwrap();
}

#[test]
fn clean_read_sharing_downgrades_supplier_to_shared() {
    let mut sys = system(3);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Read, a, None).unwrap(); // P0: EC (from memory)
    let (_, cycles, _) = done(sys.access(P1, MemOp::Read, a, None).unwrap());
    assert_eq!(cycles, 7, "clean cache-to-cache");
    assert_eq!(sys.cache_state(P0, a), BlockState::Shared);
    assert_eq!(sys.cache_state(P1, a), BlockState::Shared);
    // A third reader picks any shared holder.
    done(sys.access(P2, MemOp::Read, a, None).unwrap());
    assert_eq!(sys.cache_state(P2, a), BlockState::Shared);
    sys.check_coherence_invariants().unwrap();
}

#[test]
fn write_to_shared_invalidates_others() {
    let mut sys = system(3);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a, Some(1)).unwrap();
    sys.access(P1, MemOp::Read, a, None).unwrap();
    sys.access(P2, MemOp::Read, a, None).unwrap();
    let (_, cycles, hit) = done(sys.access(P1, MemOp::Write, a, Some(2)).unwrap());
    assert_eq!(cycles, 2, "invalidate broadcast");
    assert!(hit);
    assert_eq!(sys.cache_state(P1, a), BlockState::Em);
    assert_eq!(sys.cache_state(P0, a), BlockState::Inv);
    assert_eq!(sys.cache_state(P2, a), BlockState::Inv);
    assert_eq!(done(sys.access(P0, MemOp::Read, a, None).unwrap()).0, 2);
    sys.check_coherence_invariants().unwrap();
}

#[test]
fn direct_write_on_boundary_miss_is_free() {
    let mut sys = system(2);
    let a = heap(&sys, 8); // block boundary
    let (_, cycles, hit) = done(sys.access(P0, MemOp::DirectWrite, a, Some(3)).unwrap());
    assert_eq!(cycles, 0, "no fetch, no victim: zero bus cycles");
    assert!(!hit);
    assert_eq!(sys.cache_state(P0, a), BlockState::Em);
    assert_eq!(sys.access_stats().dw_allocations, 1);
    assert_eq!(done(sys.access(P0, MemOp::Read, a, None).unwrap()).0, 3);
}

#[test]
fn direct_write_off_boundary_degrades_to_write() {
    let mut sys = system(2);
    let a = heap(&sys, 9); // not a boundary
    let (_, cycles, _) = done(sys.access(P0, MemOp::DirectWrite, a, Some(3)).unwrap());
    assert_eq!(cycles, 13, "fetch-on-write as a plain W");
    assert_eq!(sys.access_stats().dw_allocations, 0);
}

#[test]
fn direct_write_with_remote_copy_counts_contract_violation() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P1, MemOp::Read, a, None).unwrap(); // remote copy exists
    done(sys.access(P0, MemOp::DirectWrite, a, Some(3)).unwrap());
    assert_eq!(sys.access_stats().dw_contract_violations, 1);
    assert_eq!(sys.cache_state(P1, a), BlockState::Inv, "fell back to FI");
    sys.check_coherence_invariants().unwrap();
}

#[test]
fn direct_write_evicting_dirty_victim_pays_swap_out_only() {
    // Geometry with 1 set × 1 way so every install evicts.
    let mut sys = PimSystem::new(SystemConfig {
        pes: 1,
        geometry: CacheGeometry::with_shape(4, 4, 1),
        ..SystemConfig::default()
    });
    let a = heap(&sys, 0);
    let b = heap(&sys, 4); // same (only) set
    sys.access(P0, MemOp::Write, a, Some(1)).unwrap(); // dirty victim-to-be
    let (_, cycles, _) = done(sys.access(P0, MemOp::DirectWrite, b, Some(2)).unwrap());
    assert_eq!(cycles, 5, "the swap-out-only pattern, unique to DW");
    // The victim's dirty data reached memory.
    sys.access(P0, MemOp::DirectWrite, heap(&sys, 8), Some(0))
        .unwrap(); // evict b
    assert_eq!(done(sys.access(P0, MemOp::Read, a, None).unwrap()).0, 1);
}

#[test]
fn downward_direct_write_mirrors_dw_for_descending_stacks() {
    let mut sys = system(2);
    let a = heap(&sys, 7); // last word of block [4..8)
                           // A downward-growing stack touches the top (last) word of a fresh
                           // block first: DWD allocates it without fetching.
    let (_, cycles, hit) = done(sys.access(P0, MemOp::DirectWriteDown, a, Some(1)).unwrap());
    assert_eq!(cycles, 0, "no fetch on the downward boundary");
    assert!(!hit);
    assert_eq!(sys.cache_state(P0, a), BlockState::Em);
    assert_eq!(sys.access_stats().dw_allocations, 1);
    // Pushing further down within the block: ordinary write hits.
    let (_, cycles, hit) = done(
        sys.access(P0, MemOp::DirectWriteDown, a - 1, Some(2))
            .unwrap(),
    );
    assert_eq!(cycles, 0);
    assert!(hit, "mid-block DWD degrades to a plain write");
    // Crossing into the next lower block: a fresh DWD allocation again.
    let (_, cycles, _) = done(
        sys.access(P0, MemOp::DirectWriteDown, a - 4, Some(3))
            .unwrap(),
    );
    assert_eq!(cycles, 0);
    assert_eq!(sys.access_stats().dw_allocations, 2);
    // Values read back correctly.
    assert_eq!(done(sys.access(P0, MemOp::Read, a, None).unwrap()).0, 1);
    assert_eq!(done(sys.access(P0, MemOp::Read, a - 1, None).unwrap()).0, 2);
    assert_eq!(done(sys.access(P0, MemOp::Read, a - 4, None).unwrap()).0, 3);
    sys.check_coherence_invariants().unwrap();
}

#[test]
fn dwd_on_an_upward_boundary_degrades_to_write() {
    let mut sys = system(2);
    let a = heap(&sys, 8); // block *start*: DW's case, not DWD's
    let (_, cycles, _) = done(sys.access(P0, MemOp::DirectWriteDown, a, Some(1)).unwrap());
    assert_eq!(cycles, 13, "fetch-on-write as a plain W");
    assert_eq!(sys.access_stats().dw_allocations, 0);
}

#[test]
fn exclusive_read_miss_invalidates_supplier() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a, Some(11)).unwrap(); // P0 dirty
    let (value, cycles, _) = done(sys.access(P1, MemOp::ExclusiveRead, a, None).unwrap());
    assert_eq!(value, 11);
    assert_eq!(cycles, 7, "cache-to-cache; no copy-back");
    assert_eq!(
        sys.cache_state(P0, a),
        BlockState::Inv,
        "supplier invalidated"
    );
    assert_eq!(
        sys.cache_state(P1, a),
        BlockState::Em,
        "dirty data migrated"
    );
    sys.check_coherence_invariants().unwrap();
}

#[test]
fn exclusive_read_hit_on_last_word_purges_without_swap_out() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    for i in 0..4 {
        sys.access(P0, MemOp::Write, a + i, Some(i)).unwrap();
    }
    let before = sys.bus_stats().total_cycles();
    // Read words 0..2 (hits), then the last word with ER.
    for i in 0..3 {
        let (v, c, _) = done(sys.access(P0, MemOp::ExclusiveRead, a + i, None).unwrap());
        assert_eq!(v, i);
        assert_eq!(c, 0);
    }
    let (v, c, hit) = done(sys.access(P0, MemOp::ExclusiveRead, a + 3, None).unwrap());
    assert_eq!(v, 3);
    assert_eq!(c, 0);
    assert!(hit);
    assert_eq!(sys.cache_state(P0, a), BlockState::Inv, "purged");
    assert_eq!(
        sys.bus_stats().total_cycles(),
        before,
        "dead dirty block: no traffic"
    );
    assert_eq!(sys.access_stats().purges, 1);
    assert_eq!(sys.access_stats().dirty_purges, 1);
}

#[test]
fn exclusive_read_miss_on_last_word_downgrades_to_read() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a + 3, Some(7)).unwrap();
    // P1 ER on the last word of a remote block: case (iii), plain R.
    let (v, _, _) = done(sys.access(P1, MemOp::ExclusiveRead, a + 3, None).unwrap());
    assert_eq!(v, 7);
    assert_eq!(
        sys.cache_state(P0, a),
        BlockState::Sm,
        "supplier kept (plain F)"
    );
    assert_eq!(sys.cache_state(P1, a), BlockState::Shared);
}

#[test]
fn full_block_exclusive_read_sequence_moves_then_purges() {
    // The paper's goal-record pattern: sender DWs a record, receiver ERs it.
    let mut sys = system(2);
    let a = heap(&sys, 16);
    sys.access(P0, MemOp::DirectWrite, a, Some(100)).unwrap();
    for i in 1..4 {
        sys.access(P0, MemOp::Write, a + i, Some(100 + i)).unwrap();
    }
    // Receiver reads the whole block with ER.
    let (v0, c0, _) = done(sys.access(P1, MemOp::ExclusiveRead, a, None).unwrap());
    assert_eq!(v0, 100);
    assert_eq!(c0, 7, "read-invalidate transfer");
    assert_eq!(
        sys.cache_state(P0, a),
        BlockState::Inv,
        "sender invalidated"
    );
    for i in 1..3 {
        let (v, c, _) = done(sys.access(P1, MemOp::ExclusiveRead, a + i, None).unwrap());
        assert_eq!(v, 100 + i);
        assert_eq!(c, 0, "middle words are plain hits");
    }
    let (v3, c3, _) = done(sys.access(P1, MemOp::ExclusiveRead, a + 3, None).unwrap());
    assert_eq!(v3, 103);
    assert_eq!(c3, 0);
    assert_eq!(sys.cache_state(P1, a), BlockState::Inv, "receiver purged");
    // Total: one 7-cycle transfer for a write-once/read-once block; an
    // unoptimized protocol would also have swapped it in and out of memory.
    sys.check_coherence_invariants().unwrap();
}

#[test]
fn read_purge_hit_discards_dirty_block() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a + 1, Some(5)).unwrap();
    let (v, c, hit) = done(sys.access(P0, MemOp::ReadPurge, a + 1, None).unwrap());
    assert_eq!(v, 5);
    assert_eq!(c, 0);
    assert!(hit);
    assert_eq!(sys.cache_state(P0, a), BlockState::Inv);
    assert_eq!(sys.access_stats().dirty_purges, 1);
}

#[test]
fn read_purge_miss_bypasses_the_cache_and_invalidates_supplier() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a + 2, Some(9)).unwrap();
    let (v, c, hit) = done(sys.access(P1, MemOp::ReadPurge, a + 2, None).unwrap());
    assert_eq!(v, 9);
    assert_eq!(c, 7);
    assert!(!hit);
    assert_eq!(
        sys.cache_state(P0, a),
        BlockState::Inv,
        "supplier invalidated"
    );
    assert_eq!(sys.cache_state(P1, a), BlockState::Inv, "nothing installed");
    assert_eq!(sys.access_stats().purges, 1);
}

#[test]
fn read_purge_miss_from_memory_does_not_install() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.poke(a, 33);
    let (v, c, _) = done(sys.access(P0, MemOp::ReadPurge, a, None).unwrap());
    assert_eq!(v, 33);
    assert_eq!(c, 13);
    assert_eq!(sys.cache_state(P0, a), BlockState::Inv);
}

#[test]
fn read_invalidate_makes_later_write_free() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a, Some(1)).unwrap();
    // P1 reads with RI instead of R…
    let (_, c, _) = done(sys.access(P1, MemOp::ReadInvalidate, a, None).unwrap());
    assert_eq!(c, 7);
    assert_eq!(
        sys.cache_state(P1, a),
        BlockState::Em,
        "exclusive, dirty source"
    );
    assert_eq!(sys.cache_state(P0, a), BlockState::Inv);
    // …so rewriting needs no invalidate command.
    let inv_before = sys.bus_stats().cmd_count(pim_bus::BusCommand::Invalidate);
    let (_, c, _) = done(sys.access(P1, MemOp::Write, a, Some(2)).unwrap());
    assert_eq!(c, 0);
    assert_eq!(
        sys.bus_stats().cmd_count(pim_bus::BusCommand::Invalidate),
        inv_before
    );
}

#[test]
fn read_invalidate_from_memory_is_exclusive_clean() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.poke(a, 4);
    let (v, _, _) = done(sys.access(P0, MemOp::ReadInvalidate, a, None).unwrap());
    assert_eq!(v, 4);
    assert_eq!(sys.cache_state(P0, a), BlockState::Ec);
}

#[test]
fn optimizations_disabled_downgrade_to_plain_ops() {
    let mut sys = PimSystem::new(SystemConfig {
        pes: 2,
        opt_mask: OptMask::none(),
        ..SystemConfig::default()
    });
    let a = heap(&sys, 0);
    // DW behaves as W: full 13-cycle fetch-on-write.
    let (_, c, _) = done(sys.access(P0, MemOp::DirectWrite, a, Some(1)).unwrap());
    assert_eq!(c, 13);
    // ER behaves as R: the supplier keeps a copy.
    done(sys.access(P1, MemOp::ExclusiveRead, a, None).unwrap());
    assert_eq!(sys.cache_state(P0, a), BlockState::Sm);
    assert_eq!(sys.cache_state(P1, a), BlockState::Shared);
    // Reference stats record the downgraded ops.
    assert_eq!(
        sys.ref_stats().count(StorageArea::Heap, MemOp::DirectWrite),
        0
    );
    assert_eq!(sys.ref_stats().count(StorageArea::Heap, MemOp::Write), 1);
}

// ----------------------------------------------------------------------
// Lock protocol
// ----------------------------------------------------------------------

#[test]
fn lock_read_hit_exclusive_uses_no_bus() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a, Some(8)).unwrap(); // EM
    let before = sys.bus_stats().total_cycles();
    let (v, c, _) = done(sys.access(P0, MemOp::LockRead, a, None).unwrap());
    assert_eq!(v, 8);
    assert_eq!(c, 0);
    assert_eq!(sys.bus_stats().total_cycles(), before);
    assert!(sys.holds_lock(P0, a));
    assert_eq!(sys.lock_stats().lr_hits_exclusive, 1);
}

#[test]
fn lock_read_miss_fetches_exclusively_with_lk() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P1, MemOp::Write, a, Some(3)).unwrap();
    let (v, c, hit) = done(sys.access(P0, MemOp::LockRead, a, None).unwrap());
    assert_eq!(v, 3);
    assert_eq!(c, 7);
    assert!(!hit);
    assert_eq!(sys.cache_state(P0, a), BlockState::Em);
    assert_eq!(sys.cache_state(P1, a), BlockState::Inv);
    assert_eq!(sys.bus_stats().cmd_count(pim_bus::BusCommand::Lock), 1);
}

#[test]
fn lock_read_hit_shared_upgrades_with_lk_and_i() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Read, a, None).unwrap();
    sys.access(P1, MemOp::Read, a, None).unwrap(); // both S
    let (_, c, hit) = done(sys.access(P0, MemOp::LockRead, a, None).unwrap());
    assert_eq!(c, 2, "invalidate broadcast");
    assert!(hit);
    assert_eq!(sys.cache_state(P0, a), BlockState::Ec, "clean upgrade");
    assert_eq!(sys.cache_state(P1, a), BlockState::Inv);
}

#[test]
fn write_unlock_without_waiters_uses_no_bus() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a, Some(0)).unwrap();
    sys.access(P0, MemOp::LockRead, a, None).unwrap();
    let (v, c, _) = done(sys.access(P0, MemOp::WriteUnlock, a, Some(9)).unwrap());
    assert_eq!(v, 9);
    assert_eq!(c, 0, "no waiter → no UL broadcast");
    assert!(!sys.holds_lock(P0, a));
    assert_eq!(sys.lock_stats().unlock_no_waiter, 1);
    assert_eq!(done(sys.access(P0, MemOp::Read, a, None).unwrap()).0, 9);
}

#[test]
fn lock_conflict_refuses_and_unlock_wakes() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a, Some(1)).unwrap();
    sys.access(P0, MemOp::LockRead, a, None).unwrap();

    // P1 tries to lock the same word: LH response.
    match sys.access(P1, MemOp::LockRead, a, None).unwrap() {
        Outcome::LockBusy { holder } => assert_eq!(holder, P0),
        other => panic!("expected LockBusy, got {other:?}"),
    }
    assert_eq!(sys.lock_stats().lr_refused, 1);

    // The holder's unlock now broadcasts UL and names the waiter.
    match sys.access(P0, MemOp::WriteUnlock, a, Some(2)).unwrap() {
        Outcome::Done {
            woken, bus_cycles, ..
        } => {
            assert_eq!(woken, vec![P1]);
            assert_eq!(bus_cycles, 2, "UL broadcast");
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(sys.lock_stats().unlock_no_waiter, 0);

    // P1's retry succeeds and sees the value written under the lock.
    let (v, _, _) = done(sys.access(P1, MemOp::LockRead, a, None).unwrap());
    assert_eq!(v, 2);
    done(sys.access(P1, MemOp::Unlock, a, None).unwrap());
}

#[test]
fn plain_reads_of_a_locked_block_are_refused_block_granularly() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::Write, a, Some(1)).unwrap();
    sys.access(P0, MemOp::LockRead, a, None).unwrap();
    // Even a neighbouring word in the same block is refused while locked:
    // granting the block to P1 could break the silent LR-hit-exclusive case.
    match sys.access(P1, MemOp::Read, a + 1, None).unwrap() {
        Outcome::LockBusy { holder } => assert_eq!(holder, P0),
        other => panic!("{other:?}"),
    }
    // A different block is unaffected.
    done(sys.access(P1, MemOp::Read, a + 4, None).unwrap());
}

#[test]
fn lock_survives_self_eviction() {
    // 1-way, 1-set cache: the locked block is evicted by the next fill.
    let mut sys = PimSystem::new(SystemConfig {
        pes: 2,
        geometry: CacheGeometry::with_shape(4, 4, 1),
        ..SystemConfig::default()
    });
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::LockRead, a, None).unwrap();
    sys.access(P0, MemOp::Read, heap(&sys, 4), None).unwrap(); // evicts a's block
    assert_eq!(sys.cache_state(P0, a), BlockState::Inv);
    assert!(
        sys.holds_lock(P0, a),
        "lock directory is separate from tags"
    );
    // Remote access still refused even though the block is swapped out.
    match sys.access(P1, MemOp::Read, a, None).unwrap() {
        Outcome::LockBusy { holder } => assert_eq!(holder, P0),
        other => panic!("{other:?}"),
    }
    // UW refetches, writes, unlocks, and wakes P1.
    match sys.access(P0, MemOp::WriteUnlock, a, Some(5)).unwrap() {
        Outcome::Done { woken, .. } => assert_eq!(woken, vec![P1]),
        other => panic!("{other:?}"),
    }
    assert_eq!(done(sys.access(P1, MemOp::Read, a, None).unwrap()).0, 5);
}

#[test]
fn lock_upgrade_over_a_dirty_owner_keeps_the_writeback_obligation() {
    // Regression: P1 writes (EM). P0 reads (P1 → SM owner, P0 → S; memory
    // stale). P0's LR upgrades, invalidating the SM owner — P0's copy is
    // now the *only* copy of dirty data and must be EM, or a silent
    // eviction would lose the value forever.
    let mut sys = PimSystem::new(SystemConfig {
        pes: 2,
        geometry: CacheGeometry::with_shape(16, 4, 1), // 1-way: easy eviction
        ..SystemConfig::default()
    });
    let a = heap(&sys, 0);
    sys.access(P1, MemOp::Write, a, Some(77)).unwrap();
    sys.access(P0, MemOp::Read, a, None).unwrap();
    assert_eq!(sys.cache_state(P1, a), BlockState::Sm);
    assert_eq!(sys.cache_state(P0, a), BlockState::Shared);
    done(sys.access(P0, MemOp::LockRead, a, None).unwrap());
    assert_eq!(
        sys.cache_state(P0, a),
        BlockState::Em,
        "the upgrader inherits the dropped SM owner's dirtiness"
    );
    done(sys.access(P0, MemOp::Unlock, a, None).unwrap());
    // Evict P0's block (1-way set: a conflicting fill displaces it),
    // then read the value back from memory via P1.
    done(sys.access(P0, MemOp::Read, heap(&sys, 16), None).unwrap());
    assert_eq!(sys.cache_state(P0, a), BlockState::Inv);
    let (v, _, _) = done(sys.access(P1, MemOp::Read, a, None).unwrap());
    assert_eq!(v, 77, "dirty data must survive the eviction");
}

#[test]
fn lock_misuse_is_reported() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    sys.access(P0, MemOp::LockRead, a, None).unwrap();
    assert_eq!(
        sys.access(P0, MemOp::LockRead, a, None).unwrap_err(),
        ProtocolError::AlreadyLocked { addr: a }
    );
    assert_eq!(
        sys.access(P1, MemOp::Unlock, a, None).unwrap_err(),
        ProtocolError::NotLocked { addr: a }
    );
    done(sys.access(P0, MemOp::Unlock, a, None).unwrap());
}

#[test]
fn lock_directory_capacity_is_enforced() {
    let mut sys = PimSystem::new(SystemConfig {
        pes: 1,
        lock_entries: 2,
        ..SystemConfig::default()
    });
    let h = sys.area_map().base(StorageArea::Heap);
    sys.access(P0, MemOp::LockRead, h, None).unwrap();
    sys.access(P0, MemOp::LockRead, h + 16, None).unwrap();
    assert!(matches!(
        sys.access(P0, MemOp::LockRead, h + 32, None),
        Err(ProtocolError::LockDirectoryFull { .. })
    ));
}

#[test]
fn two_pes_lock_different_blocks_concurrently() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    let b = heap(&sys, 4);
    done(sys.access(P0, MemOp::LockRead, a, None).unwrap());
    done(sys.access(P1, MemOp::LockRead, b, None).unwrap());
    done(sys.access(P0, MemOp::WriteUnlock, a, Some(1)).unwrap());
    done(sys.access(P1, MemOp::WriteUnlock, b, Some(2)).unwrap());
    assert_eq!(sys.lock_stats().unlock_no_waiter, 2);
    sys.check_coherence_invariants().unwrap();
}

#[test]
fn table5_ratios_reflect_the_free_lock_cases() {
    let mut sys = system(2);
    let a = heap(&sys, 0);
    // Typical KL1 pattern: bind a fresh variable this PE just created.
    sys.access(P0, MemOp::DirectWrite, a, Some(0)).unwrap();
    for _ in 0..10 {
        sys.access(P0, MemOp::LockRead, a, None).unwrap();
        sys.access(P0, MemOp::WriteUnlock, a, Some(1)).unwrap();
    }
    let ls = sys.lock_stats();
    assert_eq!(ls.lr_hit_ratio(), 1.0);
    assert_eq!(ls.lr_hit_exclusive_ratio(), 1.0);
    assert_eq!(ls.unlock_no_waiter_ratio(), 1.0);
    // And zero bus cycles were spent on any of it.
    assert_eq!(sys.bus_stats().cmd_count(pim_bus::BusCommand::Unlock), 0);
}
