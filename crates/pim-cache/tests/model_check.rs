//! Exhaustive protocol model check: breadth-first enumeration of every
//! reachable (cache-state × lock-directory × memory) configuration of a
//! small PIM system driven by all legal operations on a single block,
//! asserting the paper's coherence and lock invariants in each state.
//!
//! The state abstraction is sound for this workload: with one block, one
//! set and one way there is no replacement choice, so two systems with
//! equal [`PimSystem::cache_view`]/[`PimSystem::lock_view`]/memory views
//! are behaviorally indistinguishable. Statistics counters are excluded
//! from the fingerprint on purpose (they grow without bound and never
//! feed back into protocol decisions).

use std::collections::{HashMap, VecDeque};

use pim_cache::{BlockState, CacheGeometry, LockState, PimSystem, SystemConfig};
use pim_trace::{Addr, MemOp, PeId, StorageArea, Word};

/// Fixed write payload: keeps the data component of the state space finite
/// ({initial, WRITTEN, DW poison} per word) without hiding any protocol
/// behavior — the protocol never branches on data values.
const WRITTEN: Word = 7;

fn tiny_system(pes: u32) -> PimSystem {
    PimSystem::new(SystemConfig {
        pes,
        geometry: CacheGeometry {
            block_words: 2,
            sets: 1,
            ways: 1,
        },
        ..SystemConfig::default()
    })
}

fn block_words(sys: &PimSystem) -> Vec<Addr> {
    let base = sys.area_map().base(StorageArea::Heap);
    (0..sys.config().geometry.block_words)
        .map(|w| base + w * 4)
        .collect()
}

/// Canonical state key: per-PE block view, per-PE per-word lock view, and
/// the shared-memory words. Everything the protocol can branch on.
fn fingerprint(sys: &PimSystem, words: &[Addr]) -> String {
    let base = words[0];
    let mut key = String::new();
    for pe in 0..sys.config().pes {
        key.push_str(&format!("{:?};", sys.cache_view(PeId(pe), base)));
        for &w in words {
            key.push_str(&format!("{:?};", sys.lock_view(PeId(pe), w)));
        }
    }
    for &w in words {
        key.push_str(&format!("{};", sys.memory_word(w)));
    }
    key
}

/// Every operation a PE may legally attempt in some state. Unlock variants
/// are filtered at expansion time (only the holder may issue them); every
/// other op is always legal — `LockBusy` refusals are transitions too.
const ALL_OPS: [MemOp; 9] = [
    MemOp::Read,
    MemOp::Write,
    MemOp::DirectWrite,
    MemOp::ExclusiveRead,
    MemOp::ReadPurge,
    MemOp::ReadInvalidate,
    MemOp::LockRead,
    MemOp::WriteUnlock,
    MemOp::Unlock,
];

/// The contract-free subset: plain reads/writes and the lock protocol.
/// The optimized commands (`DW`/`ER`/`RP`/`RI`) carry *software contracts*
/// (single-reader, initialize-before-share, …); driven adversarially they
/// may leave memory stale behind a clean copy by design, so the
/// memory-currency invariant is only asserted over this subset.
const PLAIN_OPS: [MemOp; 5] = [
    MemOp::Read,
    MemOp::Write,
    MemOp::LockRead,
    MemOp::WriteUnlock,
    MemOp::Unlock,
];

/// Invariants checked in every reachable state, on top of
/// [`PimSystem::check_coherence_invariants`] (exclusive-copy-alone, at most
/// one dirty copy, shared copies bit-identical). `memory_currency` is only
/// sound when the exploration respects the optimized commands' software
/// contracts (i.e. uses [`PLAIN_OPS`]).
fn assert_state_invariants(sys: &PimSystem, words: &[Addr], memory_currency: bool, key: &str) {
    sys.check_coherence_invariants()
        .unwrap_or_else(|e| panic!("coherence violated: {e}\nstate: {key}"));

    let pes = sys.config().pes;
    let base = words[0];
    let views: Vec<_> = (0..pes)
        .filter_map(|pe| sys.cache_view(PeId(pe), base))
        .collect();

    // Paper invariant: an EM/EC copy is the *only* copy.
    let exclusive = views
        .iter()
        .filter(|(s, _)| matches!(s, BlockState::Em | BlockState::Ec))
        .count();
    assert!(
        exclusive <= 1 && (exclusive == 0 || views.len() == 1),
        "exclusive copy coexists with others\nstate: {key}"
    );

    // Paper invariant: S copies without an SM owner mean memory is current
    // — i.e. "S implies a clean copy exists" (the block's latest data is
    // either in a dirty owner's cache or in memory itself).
    let dirty_owner = views
        .iter()
        .any(|(s, _)| matches!(s, BlockState::Em | BlockState::Sm));
    if memory_currency && !dirty_owner {
        for (_, data) in &views {
            for (i, &w) in words.iter().enumerate() {
                assert_eq!(
                    data[i],
                    sys.memory_word(w),
                    "clean copy diverges from memory\nstate: {key}"
                );
            }
        }
    }

    // Lock invariants: at most one holder per word; LWAIT iff waiters
    // exist; waiters are distinct remote PEs.
    for &w in words {
        let holders: Vec<_> = (0..pes)
            .filter_map(|pe| sys.lock_view(PeId(pe), w).map(|v| (pe, v)))
            .collect();
        assert!(
            holders.len() <= 1,
            "word {w:#x} has {} lock holders\nstate: {key}",
            holders.len()
        );
        if let Some((pe, (state, waiters))) = holders.first() {
            assert_eq!(
                *state == LockState::Lwait,
                !waiters.is_empty(),
                "LWAIT/waiter-list mismatch on {w:#x}\nstate: {key}"
            );
            let mut seen = waiters.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), waiters.len(), "duplicate waiters\nstate: {key}");
            assert!(
                !waiters.contains(&PeId(*pe)),
                "holder waits on itself\nstate: {key}"
            );
        }
    }
}

/// LWAIT chains drain: from any reachable state, releasing every held lock
/// (holder issues `U`) wakes exactly the registered waiters and leaves no
/// lock-directory entries anywhere.
fn assert_lwait_drains(sys: &PimSystem, words: &[Addr], key: &str) {
    let mut sys = sys.clone();
    let pes = sys.config().pes;
    for &w in words {
        let holder = (0..pes).find(|&pe| sys.lock_view(PeId(pe), w).is_some());
        if let Some(pe) = holder {
            let (_, waiters) = sys.lock_view(PeId(pe), w).unwrap();
            let out = sys
                .access(PeId(pe), MemOp::Unlock, w, None)
                .unwrap_or_else(|e| panic!("holder cannot unlock: {e}\nstate: {key}"));
            let woken = match out {
                pim_cache::Outcome::Done { woken, .. } => woken,
                refused => panic!("unlock refused: {refused:?}\nstate: {key}"),
            };
            assert_eq!(woken, waiters, "UL woke wrong set\nstate: {key}");
        }
    }
    for &w in words {
        for pe in 0..pes {
            assert!(
                sys.lock_view(PeId(pe), w).is_none(),
                "lock survived full release\nstate: {key}"
            );
        }
    }
    sys.check_coherence_invariants()
        .unwrap_or_else(|e| panic!("coherence violated after drain: {e}\nstate: {key}"));
}

/// Exhaustive BFS over reachable protocol states. Returns the number of
/// distinct states and transitions explored.
fn explore(pes: u32, ops: &[MemOp], memory_currency: bool, state_cap: usize) -> (usize, u64) {
    let root = tiny_system(pes);
    let words = block_words(&root);
    let root_key = fingerprint(&root, &words);

    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut queue: VecDeque<PimSystem> = VecDeque::new();
    seen.insert(root_key, ());
    queue.push_back(root);
    let mut transitions = 0u64;

    while let Some(sys) = queue.pop_front() {
        for pe in 0..pes {
            for &op in ops {
                for &addr in &words {
                    // Only the holder may issue UW/U; everything else is
                    // always legal to *attempt*.
                    if matches!(op, MemOp::WriteUnlock | MemOp::Unlock)
                        && sys.lock_view(PeId(pe), addr).is_none()
                    {
                        continue;
                    }
                    let data = op.is_write().then_some(WRITTEN);
                    let mut next = sys.clone();
                    // Illegal attempts (e.g. re-locking a held word) are
                    // rejected without a transition.
                    if next.access(PeId(pe), op, addr, data).is_err() {
                        continue;
                    }
                    transitions += 1;
                    let key = fingerprint(&next, &words);
                    if seen.contains_key(&key) {
                        continue;
                    }
                    assert_state_invariants(&next, &words, memory_currency, &key);
                    assert_lwait_drains(&next, &words, &key);
                    seen.insert(key, ());
                    assert!(
                        seen.len() <= state_cap,
                        "state space exceeded {state_cap} states — abstraction leak?"
                    );
                    queue.push_back(next);
                }
            }
        }
    }
    (seen.len(), transitions)
}

#[test]
fn two_caches_one_block_exhaustive() {
    let (states, transitions) = explore(2, &ALL_OPS, false, 50_000);
    // The space must be non-trivial (all five block states reachable in
    // combination with lock entries) yet closed under every operation.
    assert!(states > 100, "suspiciously small space: {states}");
    assert!(transitions > states as u64);
}

#[test]
fn three_caches_one_block_exhaustive() {
    let (states, transitions) = explore(3, &ALL_OPS, false, 500_000);
    assert!(states > 1_000, "suspiciously small space: {states}");
    assert!(transitions > states as u64);
}

#[test]
fn two_caches_plain_ops_memory_current() {
    let (states, _) = explore(2, &PLAIN_OPS, true, 50_000);
    assert!(states > 50, "suspiciously small space: {states}");
}

#[test]
fn three_caches_plain_ops_memory_current() {
    let (states, _) = explore(3, &PLAIN_OPS, true, 200_000);
    assert!(states > 200, "suspiciously small space: {states}");
}

/// NACK/retry fault transitions leave the protocol state space intact.
///
/// Fault injection lives at the bus-arbitration layer: a NACKed or
/// stalled transaction is delayed and reissued, but the protocol access
/// itself runs exactly once, so the reachable (cache × lock × memory)
/// space under a fault plan is *identical* to the fault-free space.
/// This re-runs the exhaustive BFS, and for every accepted transition
/// additionally replays its bus grant through a high-rate fault plan,
/// asserting the retry algebra: bounded chains, non-negative penalty
/// equal to the grant delay, and byte-identical grants when no fault
/// fires.
#[test]
fn nack_retry_transitions_preserve_the_state_space() {
    use pim_fault::{arbitrate_with_faults, FaultConfig, FaultPlan};

    let pes = 2;
    let root = tiny_system(pes);
    let words = block_words(&root);
    // 20% per-attempt rate: chains of several retries are common.
    let plan = FaultPlan::new(FaultConfig::new(0xC0FFEE, 200_000));
    let max_chain = plan.config().max_retries as usize;

    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut queue: VecDeque<PimSystem> = VecDeque::new();
    seen.insert(fingerprint(&root, &words), ());
    queue.push_back(root);
    let mut transitions = 0u64;
    let mut faulted = 0u64;

    while let Some(sys) = queue.pop_front() {
        for pe in 0..pes {
            for op in ALL_OPS {
                for &addr in &words {
                    if matches!(op, MemOp::WriteUnlock | MemOp::Unlock)
                        && sys.lock_view(PeId(pe), addr).is_none()
                    {
                        continue;
                    }
                    let data = op.is_write().then_some(WRITTEN);
                    let mut next = sys.clone();
                    let Ok(outcome) = next.access(PeId(pe), op, addr, data) else {
                        continue;
                    };
                    transitions += 1;
                    if let pim_cache::Outcome::Done { bus_cycles, .. } = outcome {
                        // Sample the plan at a transition-dependent cycle
                        // so many (cycle, pe) points are exercised.
                        let issue = transitions * 3 % 4096;
                        let bus_free = issue.saturating_sub(transitions % 5);
                        let clean = pim_bus::arbitrate(bus_free, issue, bus_cycles);
                        let fg =
                            arbitrate_with_faults(&plan, bus_free, issue, bus_cycles, PeId(pe));
                        assert!(
                            fg.events.len() <= max_chain,
                            "retry chain exceeded max_retries"
                        );
                        assert!(fg.grant.bus_free >= clean.bus_free, "fault sped up the bus");
                        assert_eq!(
                            fg.penalty,
                            fg.grant.bus_free - clean.bus_free,
                            "penalty must equal the completion delay"
                        );
                        if fg.events.is_empty() {
                            assert_eq!(fg.grant, clean, "no-fault grant must be exact");
                        } else {
                            faulted += 1;
                        }
                    }
                    let key = fingerprint(&next, &words);
                    if seen.contains_key(&key) {
                        continue;
                    }
                    assert_state_invariants(&next, &words, false, &key);
                    seen.insert(key, ());
                    queue.push_back(next);
                }
            }
        }
    }

    // Same space as the fault-free exploration, and the plan actually
    // fired (a silent zero-injection run would prove nothing).
    let (clean_states, _) = explore(pes, &ALL_OPS, false, 50_000);
    assert_eq!(
        seen.len(),
        clean_states,
        "fault layer perturbed the protocol space"
    );
    assert!(faulted > 100, "fault plan barely fired: {faulted}");
}

/// Every one of the five paper states is actually exercised by the
/// exploration driver (guards against a driver that never leaves S/INV).
#[test]
fn all_block_states_reachable() {
    let pes = 2;
    let root = tiny_system(pes);
    let words = block_words(&root);
    let mut seen_states = std::collections::HashSet::new();
    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut queue: VecDeque<PimSystem> = VecDeque::new();
    seen.insert(fingerprint(&root, &words), ());
    queue.push_back(root);
    while let Some(sys) = queue.pop_front() {
        for pe in 0..pes {
            seen_states.insert(
                sys.cache_view(PeId(pe), words[0])
                    .map_or(BlockState::Inv, |(s, _)| s),
            );
        }
        for pe in 0..pes {
            for op in ALL_OPS {
                for &addr in &words {
                    if matches!(op, MemOp::WriteUnlock | MemOp::Unlock)
                        && sys.lock_view(PeId(pe), addr).is_none()
                    {
                        continue;
                    }
                    let data = op.is_write().then_some(WRITTEN);
                    let mut next = sys.clone();
                    if next.access(PeId(pe), op, addr, data).is_err() {
                        continue;
                    }
                    let key = fingerprint(&next, &words);
                    if seen.contains_key(&key) {
                        continue;
                    }
                    seen.insert(key, ());
                    queue.push_back(next);
                }
            }
        }
    }
    for state in [
        BlockState::Em,
        BlockState::Ec,
        BlockState::Sm,
        BlockState::Shared,
        BlockState::Inv,
    ] {
        assert!(seen_states.contains(&state), "{state:?} never reached");
    }
}
