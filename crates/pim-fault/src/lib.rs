//! Deterministic fault injection for the PIM cache simulator.
//!
//! The paper's machine assumes a fault-free bus, memory, and lock
//! directory; this crate supplies the adversarial stimulus a real
//! multiprocessor would see. A [`FaultPlan`] is a *pure function* from
//! `(seed, cycle, pe, attempt)` to an optional [`FaultKind`], evaluated
//! with a splitmix64 mix — no mutable PRNG state, so the sequential
//! engine and the speculative parallel engine (which may evaluate the
//! plan in different wall-clock orders and re-evaluate it on rollback)
//! draw *identical* faults for identical simulated cycles. Every fault
//! is timing-only: it delays the victim operation (NACK + backoff,
//! parity retry, snoop-ack timeout, stall window) but never corrupts
//! protocol state, so a faulted run reaches the same final machine
//! state as a fault-free run — just later. Recovery is bounded by
//! construction: [`FaultPlan::decide`] refuses to inject beyond
//! `max_retries` attempts of one operation.
//!
//! The crate also hosts the lock-directory deadlock detector
//! ([`find_cycle`]) used by both engines to turn an LWAIT wait-for
//! cycle into a structured error instead of a hang.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use pim_bus::{arbitrate, Grant, Nack};
use pim_trace::PeId;

/// One million — fault rates are expressed in parts per million so the
/// plan never touches floating point (bit-identical across platforms).
pub const PPM: u64 = 1_000_000;

/// The kinds of injectable faults, in stable report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The arbiter grants the bus but NACKs the transaction after a
    /// short occupancy; the requester backs off and re-arbitrates.
    BusNack,
    /// The arbiter inserts extra stall cycles into the grant (the
    /// transaction completes, but holds the bus longer).
    BusStall,
    /// The memory reply fails parity after a full bus transaction; the
    /// requester retries with backoff.
    MemCorrupt,
    /// A snoop acknowledgement is dropped; the requester times out
    /// waiting for it and re-arbitrates.
    SnoopDrop,
    /// The PE itself stalls for a fixed window before reaching the bus
    /// (models a local pipeline upset).
    PeStall,
}

/// All kinds, in report order. Index with `kind as usize`.
pub const ALL_KINDS: [FaultKind; 5] = [
    FaultKind::BusNack,
    FaultKind::BusStall,
    FaultKind::MemCorrupt,
    FaultKind::SnoopDrop,
    FaultKind::PeStall,
];

impl FaultKind {
    /// Dense index into [`ALL_KINDS`]-ordered counters.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether recovery from this kind re-issues the bus request
    /// (counts as a retry) rather than merely delaying it.
    pub fn reissues(self) -> bool {
        matches!(
            self,
            FaultKind::BusNack | FaultKind::MemCorrupt | FaultKind::SnoopDrop
        )
    }

    /// Stable machine-readable label (used as a JSON key).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BusNack => "bus_nack",
            FaultKind::BusStall => "bus_stall",
            FaultKind::MemCorrupt => "mem_corrupt",
            FaultKind::SnoopDrop => "snoop_drop",
            FaultKind::PeStall => "pe_stall",
        }
    }
}

/// Static fault-injection parameters. Everything is an integer so a
/// config (and therefore a whole faulted run) is bit-reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// PRNG seed; two runs with equal seeds draw equal fault plans.
    pub seed: u64,
    /// Injection probability per bus operation, in parts per million.
    pub rate_ppm: u32,
    /// Hard cap on injections against one operation — recovery is
    /// bounded because attempt `max_retries` is always fault-free.
    pub max_retries: u32,
    /// Bus cycles a NACKed transaction occupies before the NACK.
    pub nack_cycles: u64,
    /// Cycles a requester waits for a dropped snoop ack before
    /// re-arbitrating.
    pub snoop_timeout: u64,
    /// Length of an injected PE stall window, in cycles.
    pub stall_window: u64,
    /// Base of the linear retry backoff: attempt `n` waits
    /// `backoff_base * (n + 1)` cycles before re-issuing.
    pub backoff_base: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            rate_ppm: 0,
            max_retries: 4,
            nack_cycles: 2,
            snoop_timeout: 16,
            stall_window: 8,
            backoff_base: 4,
        }
    }
}

impl FaultConfig {
    /// A plan seeded with `seed` injecting at `rate_ppm` parts per
    /// million, with default recovery latencies.
    pub fn new(seed: u64, rate_ppm: u32) -> Self {
        FaultConfig {
            seed,
            rate_ppm,
            ..FaultConfig::default()
        }
    }

    /// Parses a CLI fault spec of the form `seed=N,rate=R` (with `R`
    /// either a fraction like `0.01` or `rate_ppm=N` for exact parts
    /// per million). Unknown keys are errors.
    pub fn parse_spec(spec: &str) -> Result<FaultConfig, String> {
        let mut config = FaultConfig::default();
        for (key, value) in pim_ckpt::spec::parse_kv_spec("faults", spec)? {
            let (key, value) = (key.as_str(), value.as_str());
            match key {
                "seed" => {
                    config.seed = value
                        .parse()
                        .map_err(|e| format!("fault seed `{value}`: {e}"))?;
                }
                "rate" => {
                    let rate: f64 = value
                        .parse()
                        .map_err(|e| format!("fault rate `{value}`: {e}"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("fault rate `{value}` outside [0, 1]"));
                    }
                    // Rounding a parsed literal is deterministic: the
                    // same spec string always yields the same ppm.
                    config.rate_ppm = (rate * PPM as f64).round() as u32;
                }
                "rate_ppm" => {
                    config.rate_ppm = value
                        .parse()
                        .map_err(|e| format!("fault rate_ppm `{value}`: {e}"))?;
                    if config.rate_ppm as u64 > PPM {
                        return Err(format!("fault rate_ppm `{value}` exceeds {PPM}"));
                    }
                }
                "retries" => {
                    config.max_retries = value
                        .parse()
                        .map_err(|e| format!("fault retries `{value}`: {e}"))?;
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(config)
    }
}

impl FaultConfig {
    /// Checkpoint hook: serializes the full configuration, so a resumed
    /// run can verify its `--faults` spec matches the interrupted one.
    pub fn save_ckpt(&self, w: &mut pim_ckpt::Writer) {
        w.put_u64(self.seed);
        w.put_u32(self.rate_ppm);
        w.put_u32(self.max_retries);
        w.put_u64(self.nack_cycles);
        w.put_u64(self.snoop_timeout);
        w.put_u64(self.stall_window);
        w.put_u64(self.backoff_base);
    }

    /// Checkpoint hook: reads a configuration saved by
    /// [`FaultConfig::save_ckpt`].
    pub fn restore_ckpt(r: &mut pim_ckpt::Reader<'_>) -> Result<FaultConfig, pim_ckpt::CkptError> {
        Ok(FaultConfig {
            seed: r.get_u64()?,
            rate_ppm: r.get_u32()?,
            max_retries: r.get_u32()?,
            nack_cycles: r.get_u64()?,
            snoop_timeout: r.get_u64()?,
            stall_window: r.get_u64()?,
            backoff_base: r.get_u64()?,
        })
    }
}

/// The canonical 64-bit finalizer (splitmix64). Full avalanche: every
/// input bit affects every output bit.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded fault plan: a pure decision function over simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Builds the plan for `config`.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether the plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.config.rate_ppm > 0
    }

    /// Decides whether attempt `attempt` of the bus operation issued by
    /// `pe` at simulated cycle `cycle` suffers a fault, and which kind.
    /// Pure: equal arguments give equal answers, in any call order.
    /// Returns `None` from attempt `max_retries` onward, so every
    /// operation completes within a bounded number of retries.
    pub fn decide(&self, cycle: u64, pe: PeId, attempt: u32) -> Option<FaultKind> {
        if self.config.rate_ppm == 0 || attempt >= self.config.max_retries {
            return None;
        }
        let key = splitmix64(
            self.config.seed
                ^ splitmix64(cycle ^ splitmix64(((pe.0 as u64) << 32) | attempt as u64)),
        );
        if key % PPM >= self.config.rate_ppm as u64 {
            return None;
        }
        Some(ALL_KINDS[(splitmix64(key) % ALL_KINDS.len() as u64) as usize])
    }

    /// Linear backoff before re-issuing after a failed attempt.
    fn backoff(&self, attempt: u32) -> u64 {
        self.config.backoff_base * (attempt as u64 + 1)
    }
}

/// One injected fault, for observer reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What was injected.
    pub kind: FaultKind,
    /// Which retry attempt it hit (0 = the original issue).
    pub attempt: u32,
    /// The simulated cycle the victim operation was issued at.
    pub cycle: u64,
}

/// Counters for injected faults and their recoveries, indexed by
/// [`FaultKind`] in [`ALL_KINDS`] order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults injected, per kind.
    pub injected: [u64; 5],
    /// Faults recovered, per kind. Equal to `injected` after any
    /// completed run — recovery is bounded by construction.
    pub recovered: [u64; 5],
    /// Total retry attempts consumed by recovery.
    pub retries: u64,
    /// Extra completion-delay cycles attributable to faults.
    pub penalty_cycles: u64,
}

impl FaultStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        FaultStats::default()
    }

    /// Total faults injected across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Total faults recovered across all kinds.
    pub fn total_recovered(&self) -> u64 {
        self.recovered.iter().sum()
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        for i in 0..ALL_KINDS.len() {
            self.injected[i] += other.injected[i];
            self.recovered[i] += other.recovered[i];
        }
        self.retries += other.retries;
        self.penalty_cycles += other.penalty_cycles;
    }

    /// Accounts one fault-aware grant: every injected fault is
    /// recovered by construction (bounded retries), so injection and
    /// recovery are credited together.
    pub fn absorb(&mut self, fg: &FaultyGrant) {
        for ev in &fg.events {
            self.injected[ev.kind.index()] += 1;
            self.recovered[ev.kind.index()] += 1;
            if ev.kind.reissues() {
                self.retries += 1;
            }
        }
        self.penalty_cycles += fg.penalty;
    }

    /// Checkpoint hook: serializes every counter.
    pub fn save_ckpt(&self, w: &mut pim_ckpt::Writer) {
        for &v in &self.injected {
            w.put_u64(v);
        }
        for &v in &self.recovered {
            w.put_u64(v);
        }
        w.put_u64(self.retries);
        w.put_u64(self.penalty_cycles);
    }

    /// Checkpoint hook: restores counters saved by
    /// [`FaultStats::save_ckpt`].
    pub fn restore_ckpt(
        &mut self,
        r: &mut pim_ckpt::Reader<'_>,
    ) -> Result<(), pim_ckpt::CkptError> {
        for v in self.injected.iter_mut() {
            *v = r.get_u64()?;
        }
        for v in self.recovered.iter_mut() {
            *v = r.get_u64()?;
        }
        self.retries = r.get_u64()?;
        self.penalty_cycles = r.get_u64()?;
        Ok(())
    }

    /// `(kind, injected, recovered)` rows in stable order.
    pub fn rows(&self) -> impl Iterator<Item = (FaultKind, u64, u64)> + '_ {
        ALL_KINDS
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, self.injected[i], self.recovered[i]))
    }
}

/// Result of a fault-aware arbitration: the synthesized grant covering
/// the whole retry chain, plus every fault injected along the way.
#[derive(Debug, Clone)]
pub struct FaultyGrant {
    /// Grant for the *successful* attempt; `wait` spans the entire
    /// chain (`bus_free - issue`), so the caller's accounting works
    /// exactly as in the fault-free case.
    pub grant: Grant,
    /// Faults injected against this operation, in injection order.
    pub events: Vec<FaultEvent>,
    /// Completion delay versus a fault-free arbitration at the same
    /// `(bus_free, issue, hold)`.
    pub penalty: u64,
}

/// Arbitrates a bus operation under `plan`, replaying the bounded
/// NACK/parity/snoop-timeout/stall chain the plan dictates for this
/// `(cycle, pe)`. Pure arithmetic over [`pim_bus::arbitrate`]: the same
/// arguments always produce the same grant, independent of engine or
/// thread count. With an inactive plan this is exactly `arbitrate`.
pub fn arbitrate_with_faults(
    plan: &FaultPlan,
    bus_free: u64,
    issue: u64,
    hold: u64,
    pe: PeId,
) -> FaultyGrant {
    let issue0 = issue;
    let baseline = arbitrate(bus_free, issue, hold);
    let mut issue = issue;
    let mut extra_hold = 0;
    let mut events = Vec::new();
    let mut nacks: Vec<Nack> = Vec::new();
    for attempt in 0..=plan.config.max_retries {
        let Some(kind) = plan.decide(issue0, pe, attempt) else {
            break;
        };
        events.push(FaultEvent {
            kind,
            attempt,
            cycle: issue0,
        });
        match kind {
            FaultKind::BusNack => nacks.push(Nack {
                hold: plan.config.nack_cycles,
                backoff: plan.backoff(attempt),
            }),
            FaultKind::MemCorrupt => nacks.push(Nack {
                hold,
                backoff: plan.backoff(attempt),
            }),
            FaultKind::SnoopDrop => nacks.push(Nack {
                hold,
                backoff: plan.config.snoop_timeout,
            }),
            FaultKind::BusStall => extra_hold += plan.config.nack_cycles,
            FaultKind::PeStall => issue += plan.config.stall_window,
        }
    }
    let grant = pim_bus::arbitrate_with_retries(bus_free, issue, &nacks, hold + extra_hold);
    // Re-anchor the grant to the original issue cycle so the caller's
    // invariant (clock advance == wait) covers the stall window too.
    let grant = Grant {
        start: grant.start,
        wait: grant.bus_free - issue0,
        bus_free: grant.bus_free,
    };
    FaultyGrant {
        penalty: grant.bus_free - baseline.bus_free,
        grant,
        events,
    }
}

/// Finds a cycle in the lock wait-for graph, if any. `edges` maps each
/// blocked PE to the PE holding the lock it waits on (at most one
/// outgoing edge per PE — a PE waits on one lock at a time). Returns
/// the cycle as a PE list starting from its smallest member, or `None`
/// if the graph is acyclic (some PE can still make progress).
pub fn find_cycle(edges: &[(PeId, PeId)]) -> Option<Vec<PeId>> {
    use std::collections::BTreeMap;
    let next: BTreeMap<PeId, PeId> = edges.iter().copied().collect();
    for &start in next.keys() {
        // Walk waiter → holder; a repeat within one walk is a cycle.
        let mut path = Vec::new();
        let mut at = start;
        loop {
            if let Some(pos) = path.iter().position(|&p| p == at) {
                let mut cycle: Vec<PeId> = path[pos..].to_vec();
                let min = cycle.iter().copied().min()?;
                let rot = cycle.iter().position(|&p| p == min)?;
                cycle.rotate_left(rot);
                return Some(cycle);
            }
            path.push(at);
            match next.get(&at) {
                Some(&holder) => at = holder,
                None => break,
            }
        }
    }
    None
}

pub mod chaos {
    //! Deterministic chaos injection for the sweep supervisor.
    //!
    //! Where [`FaultPlan`](super::FaultPlan) perturbs the *simulated*
    //! machine, a [`ChaosPlan`] perturbs the *host-side executor*: it
    //! kills or delays sweep workers mid-cell so `sweeprun --chaos` can
    //! prove the supervisor converges to the same results as an
    //! undisturbed run. The plan is the same pure-function shape as the
    //! fault plan — splitmix64 over `(seed, cell digest, attempt)`, no
    //! mutable PRNG state — so two runs with equal seeds (at any worker
    //! thread count) draw identical chaos schedules, and a retried cell
    //! re-draws exactly the event that killed it the first time.

    use super::{splitmix64, PPM};

    /// One host-side chaos event against a sweep worker.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ChaosEvent {
        /// Kill the worker mid-cell (a deliberate panic at a
        /// deterministic point, standing in for an OOM kill or crash).
        Kill,
        /// Delay the worker by this many milliseconds before it starts
        /// the cell (perturbs scheduling without changing results).
        Delay(u64),
    }

    /// Static chaos parameters, parsed from `--chaos seed=N[,...]`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ChaosConfig {
        /// PRNG seed; equal seeds draw equal chaos schedules.
        pub seed: u64,
        /// Worker-kill probability per cell attempt, in parts per
        /// million.
        pub kill_ppm: u32,
        /// Worker-delay probability per cell attempt, in ppm.
        pub delay_ppm: u32,
        /// Longest injected delay, in milliseconds.
        pub max_delay_ms: u64,
    }

    impl Default for ChaosConfig {
        fn default() -> Self {
            ChaosConfig {
                seed: 0,
                // Aggressive by default: chaos mode exists to stress the
                // supervisor, so roughly every third attempt is killed
                // and every fifth delayed.
                kill_ppm: 300_000,
                delay_ppm: 200_000,
                max_delay_ms: 20,
            }
        }
    }

    impl ChaosConfig {
        /// Parses `seed=N[,kill=PPM][,delay=PPM][,max_delay_ms=N]`
        /// via the shared kv-spec parser, so `--chaos` emits the same
        /// named-flag diagnostics as every other spec flag.
        pub fn parse_spec(spec: &str) -> Result<ChaosConfig, String> {
            let mut config = ChaosConfig::default();
            for (key, value) in pim_ckpt::spec::parse_kv_spec("chaos", spec)? {
                let parse_ppm = |v: &str, what: &str| -> Result<u32, String> {
                    let n: u32 = v.parse().map_err(|e| format!("chaos {what} `{v}`: {e}"))?;
                    if n as u64 > PPM {
                        return Err(format!("chaos {what} `{v}` exceeds {PPM}"));
                    }
                    Ok(n)
                };
                match key.as_str() {
                    "seed" => {
                        config.seed = value
                            .parse()
                            .map_err(|e| format!("chaos seed `{value}`: {e}"))?;
                    }
                    "kill" => config.kill_ppm = parse_ppm(&value, "kill ppm")?,
                    "delay" => config.delay_ppm = parse_ppm(&value, "delay ppm")?,
                    "max_delay_ms" => {
                        config.max_delay_ms = value
                            .parse()
                            .map_err(|e| format!("chaos max_delay_ms `{value}`: {e}"))?;
                    }
                    other => return Err(format!("unknown chaos spec key `{other}`")),
                }
            }
            Ok(config)
        }
    }

    /// A seeded chaos plan: a pure decision function over cell attempts.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ChaosPlan {
        config: ChaosConfig,
    }

    impl ChaosPlan {
        /// Builds the plan for `config`.
        pub fn new(config: ChaosConfig) -> ChaosPlan {
            ChaosPlan { config }
        }

        /// The plan's configuration.
        pub fn config(&self) -> &ChaosConfig {
            &self.config
        }

        /// Decides what (if anything) happens to the worker running
        /// attempt `attempt` of the cell identified by `digest`. Pure:
        /// equal arguments give equal answers in any call order, so the
        /// schedule is identical at every worker-thread count. The
        /// *supervisor* bounds recovery by construction: it stops
        /// consulting the plan on a cell's final permitted attempt, so
        /// chaos alone can never quarantine a cell.
        pub fn decide(&self, digest: u64, attempt: u32) -> Option<ChaosEvent> {
            let key = splitmix64(
                self.config.seed ^ splitmix64(digest ^ ((attempt as u64) << 48 | 0xC4A0)),
            );
            if key % PPM < self.config.kill_ppm as u64 {
                return Some(ChaosEvent::Kill);
            }
            let key2 = splitmix64(key);
            if key2 % PPM < self.config.delay_ppm as u64 {
                let ms = splitmix64(key2) % (self.config.max_delay_ms.max(1));
                return Some(ChaosEvent::Delay(ms));
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn inactive_plan_is_transparent() {
        let plan = FaultPlan::new(FaultConfig::new(7, 0));
        for cycle in 0..1000 {
            assert_eq!(plan.decide(cycle, PeId(0), 0), None);
        }
        let fg = arbitrate_with_faults(&plan, 10, 4, 6, PeId(1));
        assert_eq!(fg.grant, arbitrate(10, 4, 6));
        assert!(fg.events.is_empty());
        assert_eq!(fg.penalty, 0);
    }

    #[test]
    fn decide_is_pure_and_seed_sensitive() {
        let a = FaultPlan::new(FaultConfig::new(7, 100_000));
        let b = FaultPlan::new(FaultConfig::new(8, 100_000));
        let mut diverged = false;
        for cycle in 0..4096 {
            for pe in 0..4 {
                let d = a.decide(cycle, PeId(pe), 0);
                assert_eq!(d, a.decide(cycle, PeId(pe), 0));
                if d != b.decide(cycle, PeId(pe), 0) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "seeds 7 and 8 drew identical plans");
    }

    #[test]
    fn chaos_plan_is_pure_seed_sensitive_and_parses() {
        use chaos::{ChaosConfig, ChaosEvent, ChaosPlan};
        let a = ChaosPlan::new(ChaosConfig {
            seed: 7,
            ..ChaosConfig::default()
        });
        let b = ChaosPlan::new(ChaosConfig {
            seed: 8,
            ..ChaosConfig::default()
        });
        let (mut kills, mut delays, mut diverged) = (0u32, 0u32, false);
        for digest in 0..4096u64 {
            for attempt in 0..3u32 {
                let d = a.decide(digest, attempt);
                assert_eq!(d, a.decide(digest, attempt), "not pure");
                match d {
                    Some(ChaosEvent::Kill) => kills += 1,
                    Some(ChaosEvent::Delay(ms)) => {
                        assert!(ms < a.config().max_delay_ms);
                        delays += 1;
                    }
                    None => {}
                }
                if d != b.decide(digest, attempt) {
                    diverged = true;
                }
            }
        }
        assert!(kills > 0 && delays > 0, "default rates injected nothing");
        assert!(diverged, "seeds 7 and 8 drew identical chaos plans");

        let c = ChaosConfig::parse_spec("seed=42,kill=1000,delay=0,max_delay_ms=5").unwrap();
        assert_eq!(
            (c.seed, c.kill_ppm, c.delay_ppm, c.max_delay_ms),
            (42, 1000, 0, 5)
        );
        assert!(ChaosConfig::parse_spec("kill=2000000").is_err());
        assert!(ChaosConfig::parse_spec("bogus=1").is_err());
        assert!(ChaosConfig::parse_spec("seed").is_err());
    }

    #[test]
    fn injection_rate_tracks_config() {
        let plan = FaultPlan::new(FaultConfig::new(3, 100_000)); // 10%
        let hits = (0..100_000u64)
            .filter(|&c| plan.decide(c, PeId(0), 0).is_some())
            .count();
        // 10% +- 1% over 100k trials.
        assert!((9_000..=11_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn retries_are_bounded() {
        let config = FaultConfig {
            rate_ppm: PPM as u32, // always inject…
            max_retries: 3,       // …but never past attempt 2
            ..FaultConfig::new(9, 0)
        };
        let plan = FaultPlan::new(config);
        for cycle in 0..256 {
            assert!(plan.decide(cycle, PeId(0), 3).is_none());
            assert!(plan.decide(cycle, PeId(0), 0).is_some());
        }
        let fg = arbitrate_with_faults(&plan, 0, 5, 4, PeId(0));
        assert_eq!(fg.events.len(), 3);
        assert!(fg.penalty > 0);
        // The synthesized wait covers the whole chain.
        assert_eq!(fg.grant.wait, fg.grant.bus_free - 5);
    }

    #[test]
    fn faulty_grants_keep_bus_free_monotonic() {
        let plan = FaultPlan::new(FaultConfig::new(11, 300_000));
        let mut bus_free = 0;
        for i in 0..2000u64 {
            let issue = i * 3;
            let fg = arbitrate_with_faults(&plan, bus_free, issue, 5, PeId((i % 4) as u32));
            assert!(fg.grant.bus_free >= bus_free);
            assert!(fg.grant.bus_free >= issue + 5);
            assert_eq!(fg.grant.wait, fg.grant.bus_free - issue);
            bus_free = fg.grant.bus_free;
        }
    }

    #[test]
    fn parse_spec_round_trips() {
        let c = FaultConfig::parse_spec("seed=42,rate=0.01").unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(c.rate_ppm, 10_000);
        let c = FaultConfig::parse_spec("rate_ppm=250,seed=1,retries=6").unwrap();
        assert_eq!((c.seed, c.rate_ppm, c.max_retries), (1, 250, 6));
        assert!(FaultConfig::parse_spec("rate=2.0").is_err());
        assert!(FaultConfig::parse_spec("bogus=1").is_err());
        assert!(FaultConfig::parse_spec("seed").is_err());
    }

    #[test]
    fn wait_for_cycles_are_found() {
        let p = PeId;
        assert_eq!(find_cycle(&[]), None);
        assert_eq!(find_cycle(&[(p(0), p(1))]), None);
        assert_eq!(
            find_cycle(&[(p(0), p(1)), (p(1), p(0))]),
            Some(vec![p(0), p(1)])
        );
        // Chain into a cycle: 3 → 1 → 2 → 1.
        assert_eq!(
            find_cycle(&[(p(3), p(1)), (p(1), p(2)), (p(2), p(1))]),
            Some(vec![p(1), p(2)])
        );
        assert_eq!(find_cycle(&[(p(0), p(1)), (p(1), p(2))]), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn chains_always_terminate_and_account(
            seed in any::<u64>(),
            rate in 0u32..PPM as u32 + 1,
            issue in 0u64..10_000,
            bus_free in 0u64..10_000,
            hold in 1u64..32,
            pe in 0u32..8,
        ) {
            let plan = FaultPlan::new(FaultConfig::new(seed, rate));
            let fg = arbitrate_with_faults(&plan, bus_free, issue, hold, PeId(pe));
            prop_assert!(fg.events.len() as u32 <= plan.config().max_retries);
            prop_assert!(fg.grant.bus_free >= issue.max(bus_free) + hold);
            prop_assert_eq!(fg.grant.wait, fg.grant.bus_free - issue);
            let baseline = arbitrate(bus_free, issue, hold);
            prop_assert_eq!(fg.penalty, fg.grant.bus_free - baseline.bus_free);
            if fg.events.is_empty() {
                prop_assert_eq!(fg.penalty, 0);
            }
        }
    }
}
