//! Converting between `fghc::ast::Term` and heap representations.
//!
//! `build_term` injects a query's arguments into the heap with *uncounted*
//! pokes (bootstrap is not part of the measured workload); `extract_term`
//! reads results back with uncounted peeks after a run.

use crate::layout::PeAllocators;
use crate::words::Tagged;
use fghc::instr::SymbolTable;
use fghc::Term;
use pim_trace::{Addr, MemoryPort, Word};

/// Builds `term` into the heap (uncounted), returning its word. Variables
/// are allocated as fresh cells and recorded in `vars` by name (shared
/// across one query, so a repeated variable is one cell).
pub(crate) fn build_term(
    port: &mut dyn MemoryPort,
    alloc: &mut PeAllocators,
    term: &Term,
    vars: &mut Vec<(String, Addr)>,
    symbols: &mut SymbolTable,
) -> Word {
    match term {
        Term::Var(name) => {
            if let Some((_, a)) = vars.iter().find(|(n, _)| n == name) {
                return Tagged::Ref(*a).encode();
            }
            let a = alloc.heap(1);
            port.poke(a, Tagged::Ref(a).encode());
            vars.push((name.clone(), a));
            Tagged::Ref(a).encode()
        }
        Term::Int(i) => Tagged::Int(*i).encode(),
        Term::Atom(s) => Tagged::Atom(symbols.intern_atom(s)).encode(),
        Term::Nil => Tagged::Nil.encode(),
        Term::Cons(h, t) => {
            let hw = build_term(port, alloc, h, vars, symbols);
            let tw = build_term(port, alloc, t, vars, symbols);
            let a = alloc.heap(2);
            port.poke(a, hw);
            port.poke(a + 1, tw);
            Tagged::List(a).encode()
        }
        Term::Struct(name, args) => {
            let words: Vec<Word> = args
                .iter()
                .map(|t| build_term(port, alloc, t, vars, symbols))
                .collect();
            let a = alloc.heap(1 + words.len() as u64);
            port.poke(
                a,
                Tagged::Functor(
                    symbols.intern_functor(name, args.len() as u8),
                    args.len() as u8,
                )
                .encode(),
            );
            for (i, w) in words.iter().enumerate() {
                port.poke(a + 1 + i as u64, *w);
            }
            Tagged::Struct(a).encode()
        }
    }
}

/// Decodes the term rooted at `word` with uncounted peeks. Unbound
/// variables decode as `Var("_<addr>")`; cycles and very deep terms are
/// cut off with a `Var("...")` placeholder.
pub fn extract_term(port: &dyn MemoryPort, word: Word, symbols: &SymbolTable) -> Term {
    extract(port, word, symbols, 0)
}

fn extract(port: &dyn MemoryPort, mut word: Word, symbols: &SymbolTable, depth: u32) -> Term {
    if depth > 100_000 {
        return Term::Var("...".into());
    }
    // Dereference.
    loop {
        match Tagged::decode(word) {
            Tagged::Ref(a) => {
                let w2 = port.peek(a);
                match Tagged::decode(w2) {
                    Tagged::Ref(b) if b == a => return Term::Var(format!("_{a}")),
                    Tagged::Hook(_) => return Term::Var(format!("_{a}")),
                    _ => word = w2,
                }
            }
            Tagged::Hook(_) => return Term::Var("_hooked".into()),
            Tagged::Int(i) => return Term::Int(i),
            Tagged::Atom(id) => return Term::Atom(symbols.atom_name(id).to_string()),
            Tagged::Nil => return Term::Nil,
            Tagged::List(a) => {
                let h = extract(port, port.peek(a), symbols, depth + 1);
                let t = extract(port, port.peek(a + 1), symbols, depth + 1);
                return Term::Cons(Box::new(h), Box::new(t));
            }
            Tagged::Struct(a) => {
                let (fid, n) = match Tagged::decode(port.peek(a)) {
                    Tagged::Functor(f, n) => (f, n),
                    other => panic!("structure without functor: {other:?}"),
                };
                let (name, _) = symbols.functor(fid);
                let name = name.to_string();
                let args = (0..u64::from(n))
                    .map(|i| extract(port, port.peek(a + 1 + i), symbols, depth + 1))
                    .collect();
                return Term::Struct(name, args);
            }
            Tagged::Functor(..) => panic!("bare functor word in term position"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatPort;
    use crate::layout::Layout;
    use pim_trace::{AreaMap, PeId};

    #[test]
    fn terms_round_trip_through_the_heap() {
        let mut port = FlatPort::new(1);
        let layout = Layout::new(AreaMap::standard(), 1, 4, 4);
        let mut alloc = crate::layout::PeAllocators::new(&layout, PeId(0));
        let mut symbols = SymbolTable::new();
        let mut vars = Vec::new();

        let term = Term::Struct(
            "pair".into(),
            vec![
                Term::list(vec![Term::Int(1), Term::Int(2)], None),
                Term::Struct(
                    "f".into(),
                    vec![Term::Atom("ok".into()), Term::Var("X".into())],
                ),
            ],
        );
        let w = build_term(&mut port, &mut alloc, &term, &mut vars, &mut symbols);
        let back = extract_term(&port, w, &symbols);
        assert_eq!(
            back.to_string(),
            "pair([1,2],f(ok,_X))".replace(
                "_X",
                {
                    let (_, a) = &vars[0];
                    &format!("_{a}")
                }
                .as_str()
            )
        );
        assert_eq!(vars.len(), 1);
    }

    #[test]
    fn repeated_variables_share_one_cell() {
        let mut port = FlatPort::new(1);
        let layout = Layout::new(AreaMap::standard(), 1, 4, 4);
        let mut alloc = crate::layout::PeAllocators::new(&layout, PeId(0));
        let mut symbols = SymbolTable::new();
        let mut vars = Vec::new();
        let term = Term::Cons(
            Box::new(Term::Var("X".into())),
            Box::new(Term::Var("X".into())),
        );
        build_term(&mut port, &mut alloc, &term, &mut vars, &mut symbols);
        assert_eq!(vars.len(), 1, "X allocated once");
    }
}
