//! Structured machine errors: conditions the abstract machine used to
//! panic on — an undefined query procedure, a corrupt goal record, a
//! malformed load-balancer message — surface as [`MachineError`] values
//! so harnesses can print a diagnostic and exit instead of unwinding.

use pim_trace::{Addr, Word};

/// A fatal abstract-machine failure.
///
/// Unlike a program *failure* (unification failure, no applicable
/// clause — an FGHC-level outcome reported by
/// [`crate::Cluster::failure`]), these indicate the machine state
/// itself is unusable: the query never existed, or in-memory records
/// the machine wrote were not found where its invariants say they must
/// be (which a fault-injection harness can legitimately provoke).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// [`crate::Cluster::set_query`] named a procedure the compiled
    /// program does not define.
    UndefinedQuery {
        /// The requested procedure name.
        name: String,
        /// The requested arity.
        arity: u8,
    },
    /// The machine was stepped before any query was set.
    QueryNotSet,
    /// A load-balancer reply slot held a word that does not decode to a
    /// goal-record address.
    BadReplyMessage {
        /// The PE that read the reply.
        pe: u32,
        /// The undecodable word.
        word: Word,
    },
    /// A reply arrived on a PE with no outstanding work request.
    ReplyWithoutRequest {
        /// The PE with the spurious reply.
        pe: u32,
    },
    /// An address that must lie in some PE's slice of `area` does not.
    AddressOutsideSlices {
        /// The stray address.
        addr: Addr,
        /// The storage area searched ("goal" or "suspension").
        area: &'static str,
    },
    /// A goal record's header word does not decode to a functor.
    CorruptGoalRecord {
        /// The record address.
        rec: Addr,
        /// The bad header word.
        word: Word,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::UndefinedQuery { name, arity } => {
                write!(f, "query procedure {name}/{arity} undefined")
            }
            MachineError::QueryNotSet => {
                write!(f, "no query set before running (call set_query first)")
            }
            MachineError::BadReplyMessage { pe, word } => {
                write!(f, "PE{pe} read a bad reply message word {word:#x}")
            }
            MachineError::ReplyWithoutRequest { pe } => {
                write!(f, "PE{pe} received a reply without an outstanding request")
            }
            MachineError::AddressOutsideSlices { addr, area } => {
                write!(f, "address {addr:#x} is not in any {area} slice")
            }
            MachineError::CorruptGoalRecord { rec, word } => {
                write!(f, "goal record {rec:#x} is corrupt (header word {word:#x})")
            }
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_readably() {
        let e = MachineError::UndefinedQuery {
            name: "main".into(),
            arity: 2,
        };
        assert_eq!(e.to_string(), "query procedure main/2 undefined");
        let e = MachineError::AddressOutsideSlices {
            addr: 0x1000,
            area: "goal",
        };
        assert_eq!(e.to_string(), "address 0x1000 is not in any goal slice");
        let e = MachineError::CorruptGoalRecord {
            rec: 0x40,
            word: 0x7,
        };
        assert!(e.to_string().contains("0x40"));
    }
}
