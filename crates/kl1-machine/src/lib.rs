//! A parallel KL1 abstract machine emulator — the workload generator of
//! the ISCA'89 PIM cache evaluation.
//!
//! The machine executes FGHC programs compiled by the [`fghc`] crate,
//! one micro-step per PE per scheduling slot, issuing every reference to
//! the five KL1 storage areas (instruction, heap, goal, suspension,
//! communication) through a [`pim_trace::MemoryPort`]:
//!
//! * over a [`FlatPort`] for functional runs and raw reference counting
//!   (the paper's Table 1 and reference-mix tables);
//! * over the `pim-sim` engine for full cache-simulation runs (every
//!   other table and figure).
//!
//! The optimized memory commands are used exactly where the paper
//! prescribes: new heap structures and goal records are **direct-written**
//! (`DW`), goal and suspension records are read once with **exclusive
//! read**/**read purge** (`ER`/`RP`), load-balancing reply messages are
//! read with **read invalidate** (`RI`), and variable bindings go through
//! the hardware lock (`LR`/`UW`/`U`).
//!
//! # Examples
//!
//! ```
//! use kl1_machine::{Cluster, ClusterConfig, FlatPort};
//! use pim_trace::{PeId, Process, StepOutcome};
//!
//! let program = fghc::compile(
//!     "main(X) :- true | app([1,2], [3], X).
//!      app([], Y, Z)    :- true | Z = Y.
//!      app([H|T], Y, Z) :- true | Z = [H|W], app(T, Y, W).",
//! )?;
//! let mut cluster = Cluster::new(program, ClusterConfig { pes: 1, ..Default::default() });
//! cluster.set_query("main", vec![fghc::Term::Var("X".into())]).expect("main/1 exists");
//!
//! let mut port = FlatPort::new(1);
//! loop {
//!     match cluster.step(PeId(0), &mut port) {
//!         StepOutcome::Finished => break,
//!         _ => {}
//!     }
//! }
//! let result = cluster.extract(&port, "X").unwrap();
//! assert_eq!(result.to_string(), "[1,2,3]");
//! # Ok::<(), fghc::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod error;
pub mod exec;
pub mod flat;
pub mod gc;
pub mod layout;
pub mod machine;
pub mod term_io;
pub mod unify;
pub mod words;

pub use error::MachineError;
pub use flat::FlatPort;
pub use gc::GcStats;
pub use machine::{Cluster, ClusterConfig, MachineStats};
pub use term_io::extract_term;
pub use words::Tagged;

use pim_trace::{PeId, Process, StepOutcome};

/// Runs a cluster to completion on a flat port (functional mode),
/// scheduling PEs round-robin. Returns the port for result extraction.
///
/// # Panics
///
/// Panics if the program does not finish within `max_steps` or fails.
/// Use [`try_run_flat`] for a diagnostic instead of a panic.
pub fn run_flat(cluster: &mut Cluster, max_steps: u64) -> FlatPort {
    match try_run_flat(cluster, max_steps) {
        Ok(port) => port,
        Err(msg) => panic!("program failed: {msg}"),
    }
}

/// Runs a cluster to completion on a flat port, reporting failure (a
/// program failure, a fatal machine error, or a blown step budget) as a
/// diagnostic string instead of panicking.
///
/// # Errors
///
/// The program's failure message, the machine error's rendering, or a
/// step-budget diagnostic.
pub fn try_run_flat(cluster: &mut Cluster, max_steps: u64) -> Result<FlatPort, String> {
    let pes = cluster.pe_count();
    let mut port = FlatPort::new(pes);
    let mut steps = 0u64;
    'outer: loop {
        for pe in 0..pes {
            port.set_pe(PeId(pe));
            match cluster.step(PeId(pe), &mut port) {
                StepOutcome::Finished => break 'outer,
                // A lock conflict on the flat port: the holder advances on
                // its own round-robin turn, so simply retry next round.
                StepOutcome::Stalled => {}
                StepOutcome::Ran | StepOutcome::Idle => {}
            }
            steps += 1;
            if steps >= max_steps {
                return Err(format!("program did not finish in {max_steps} steps"));
            }
        }
    }
    if let Some(msg) = cluster.failure() {
        return Err(msg.to_string());
    }
    Ok(port)
}
