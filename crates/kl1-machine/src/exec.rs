//! Instruction execution: one abstract instruction per engine micro-step.

use crate::machine::{pv, Abort, Cluster, Mres, Phase};
use crate::unify::{deref, read_cell, Deref};
use crate::words::Tagged;
use fghc::ast::{ArithOp, CmpOp};
use fghc::instr::{Const, Instr, Operand, SetOp, TypeTest};
use pim_trace::{Addr, MemOp, MemoryPort, Word};

/// Result of evaluating an arithmetic operand in a guard.
enum NumVal {
    Int(i64),
    Unbound(Addr),
    NotNum,
}

impl Cluster {
    fn const_word(&self, c: Const) -> Word {
        match c {
            Const::Int(i) => Tagged::Int(i).encode(),
            Const::Atom(a) => Tagged::Atom(a).encode(),
            Const::Nil => Tagged::Nil.encode(),
        }
    }

    /// Writes one fresh heap word (`DW` on block boundary).
    fn write_heap(&self, port: &mut dyn MemoryPort, addr: Addr, w: Word) -> Mres<()> {
        let op = if addr.is_multiple_of(self.config.block_words) {
            MemOp::DirectWrite
        } else {
            MemOp::Write
        };
        pv(port.op(op, addr, Some(w)))?;
        Ok(())
    }

    /// Resolves a structure/cons slot being built at `slot_addr`.
    fn set_slot(
        &mut self,
        pe: usize,
        port: &mut dyn MemoryPort,
        slot_addr: Addr,
        op: SetOp,
    ) -> Mres<()> {
        let w = match op {
            SetOp::Reg(r) => self.pes[pe].regs[r as usize],
            SetOp::Const(c) => self.const_word(c),
            SetOp::Fresh(r) => {
                // The slot itself becomes the variable cell.
                let w = Tagged::Ref(slot_addr).encode();
                self.pes[pe].regs[r as usize] = w;
                w
            }
        };
        self.write_heap(port, slot_addr, w)
    }

    fn num_operand(&mut self, pe: usize, port: &mut dyn MemoryPort, op: Operand) -> Mres<NumVal> {
        let w = match op {
            Operand::Int(i) => return Ok(NumVal::Int(i)),
            Operand::Reg(r) => self.pes[pe].regs[r as usize],
        };
        Ok(match deref(port, w)? {
            Deref::Unbound(a) => NumVal::Unbound(a),
            Deref::Bound(Tagged::Int(i)) => NumVal::Int(i),
            Deref::Bound(_) => NumVal::NotNum,
        })
    }

    fn soft_fail(&mut self, pe: usize) {
        self.pes[pe].pc = self.pes[pe].clause_fail;
    }

    fn arith(op: ArithOp, a: i64, b: i64) -> Mres<i64> {
        let r = match op {
            ArithOp::Add => a.checked_add(b),
            ArithOp::Sub => a.checked_sub(b),
            ArithOp::Mul => a.checked_mul(b),
            ArithOp::Div => {
                if b == 0 {
                    return Err(Abort::Fail("division by zero".into()));
                }
                a.checked_div(b)
            }
            ArithOp::Mod => {
                if b == 0 {
                    return Err(Abort::Fail("modulo by zero".into()));
                }
                a.checked_rem(b)
            }
        };
        r.ok_or_else(|| Abort::Fail(format!("arithmetic overflow: {a} {op:?} {b}")))
    }

    fn compare(op: CmpOp, a: i64, b: i64) -> bool {
        match op {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// Executes the instruction at the current `pc`.
    pub(crate) fn exec_instr(&mut self, pe: usize, port: &mut dyn MemoryPort) -> Mres<()> {
        let pc = self.pes[pe].pc;
        let instr = self.program.code[pc].clone();

        // Instruction fetch: one counted read per encoded word.
        let fetch_base = self.inst_base + self.program.word_offsets[pc];
        for k in 0..instr.words() {
            pv(port.op(MemOp::Read, fetch_base + k, None))?;
        }
        self.pes[pe].instructions += 1;

        let next = pc + 1;
        match instr {
            // ---- clause control ----
            Instr::TryClause { next: fail_to } => {
                self.pes[pe].clause_fail = fail_to;
                self.pes[pe].pc = next;
            }
            Instr::SwitchOnTag {
                var,
                int,
                atom,
                nil,
                list,
                strct,
            } => {
                // First-argument indexing: pick the clause chain for X0's
                // tag, writing the dereferenced value back so the chain's
                // Wait instructions don't re-walk the reference path.
                let w = self.pes[pe].regs[0];
                match deref(port, w)? {
                    Deref::Unbound(a) => {
                        self.pes[pe].regs[0] = Tagged::Ref(a).encode();
                        self.pes[pe].pc = var;
                    }
                    Deref::Bound(t) => {
                        self.pes[pe].regs[0] = t.encode();
                        self.pes[pe].pc = match t {
                            Tagged::Int(_) => int,
                            Tagged::Atom(_) => atom,
                            Tagged::Nil => nil,
                            Tagged::List(_) => list,
                            Tagged::Struct(_) => strct,
                            other => unreachable!("{other:?} in argument register"),
                        };
                    }
                }
            }
            Instr::Retry {
                body,
                next: fail_to,
            } => {
                self.pes[pe].clause_fail = fail_to;
                self.pes[pe].pc = body;
            }
            Instr::NoMoreClauses => {
                if self.pes[pe].susp_vars.is_empty() {
                    let Some((proc, _)) = self.pes[pe].current else {
                        unreachable!("failing without a goal")
                    };
                    let (name, arity) = &self.program.proc_names[proc as usize];
                    return Err(Abort::Fail(format!(
                        "goal failed: no clause of {name}/{arity} applies"
                    )));
                }
                self.start_suspension(pe, port)?;
            }
            Instr::Commit => {
                self.pes[pe].susp_vars.clear();
                self.pes[pe].reductions += 1;
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.reduction(pim_trace::PeId(pe as u32), port.now());
                }
                self.pes[pe].pc = next;
            }
            Instr::Proceed => {
                self.pes[pe].current = None;
                self.pes[pe].phase = Phase::Fetch;
                self.live_goals -= 1;
            }
            Instr::Execute { proc, argc } => {
                // Same goal continues in registers: no goal-area traffic.
                self.begin_goal(pe, proc, argc);
            }
            Instr::Spawn { proc, args } => {
                let words: Vec<Word> = args
                    .iter()
                    .map(|&r| self.pes[pe].regs[r as usize])
                    .collect();
                let rec = self.make_goal_record(pe, port, proc, &words)?;
                self.pes[pe].deque.push_front(rec);
                self.live_goals += 1;
                self.pes[pe].pc = next;
            }
            Instr::Halt => {
                self.halted = true;
            }

            // ---- passive part ----
            Instr::WaitConst { reg, val } => {
                let w = self.pes[pe].regs[reg as usize];
                match deref(port, w)? {
                    Deref::Unbound(a) => {
                        self.pes[pe].susp_vars.push(a);
                        self.soft_fail(pe);
                    }
                    Deref::Bound(t) => {
                        let want = Tagged::decode(self.const_word(val));
                        if t == want {
                            self.pes[pe].pc = next;
                        } else {
                            self.soft_fail(pe);
                        }
                    }
                }
            }
            Instr::WaitList { reg, car, cdr } => {
                let w = self.pes[pe].regs[reg as usize];
                match deref(port, w)? {
                    Deref::Unbound(a) => {
                        self.pes[pe].susp_vars.push(a);
                        self.soft_fail(pe);
                    }
                    Deref::Bound(Tagged::List(a)) => {
                        self.pes[pe].regs[car as usize] = read_cell(port, a)?;
                        self.pes[pe].regs[cdr as usize] = read_cell(port, a + 1)?;
                        self.pes[pe].pc = next;
                    }
                    Deref::Bound(_) => self.soft_fail(pe),
                }
            }
            Instr::WaitStruct {
                reg,
                functor,
                arity,
                dst,
            } => {
                let w = self.pes[pe].regs[reg as usize];
                match deref(port, w)? {
                    Deref::Unbound(a) => {
                        self.pes[pe].susp_vars.push(a);
                        self.soft_fail(pe);
                    }
                    Deref::Bound(Tagged::Struct(a)) => {
                        let f = pv(port.read(a))?;
                        match Tagged::decode(f) {
                            Tagged::Functor(fid, n) if fid == functor && n == arity => {
                                for i in 0..u64::from(arity) {
                                    self.pes[pe].regs[dst as usize + i as usize] =
                                        read_cell(port, a + 1 + i)?;
                                }
                                self.pes[pe].pc = next;
                            }
                            _ => self.soft_fail(pe),
                        }
                    }
                    Deref::Bound(_) => self.soft_fail(pe),
                }
            }
            Instr::GuardCmp { op, a, b } => {
                let va = self.num_operand(pe, port, a)?;
                let vb = self.num_operand(pe, port, b)?;
                match (va, vb) {
                    (NumVal::Int(x), NumVal::Int(y)) => {
                        if Self::compare(op, x, y) {
                            self.pes[pe].pc = next;
                        } else {
                            self.soft_fail(pe);
                        }
                    }
                    (NumVal::Unbound(v), _) | (_, NumVal::Unbound(v)) => {
                        self.pes[pe].susp_vars.push(v);
                        self.soft_fail(pe);
                    }
                    _ => self.soft_fail(pe),
                }
            }
            Instr::GuardIs { dst, op, a, b } => {
                let va = self.num_operand(pe, port, a)?;
                let vb = self.num_operand(pe, port, b)?;
                match (va, vb) {
                    (NumVal::Int(x), NumVal::Int(y)) => {
                        let r = Self::arith(op, x, y)?;
                        self.pes[pe].regs[dst as usize] = Tagged::Int(r).encode();
                        self.pes[pe].pc = next;
                    }
                    (NumVal::Unbound(v), _) | (_, NumVal::Unbound(v)) => {
                        self.pes[pe].susp_vars.push(v);
                        self.soft_fail(pe);
                    }
                    _ => self.soft_fail(pe),
                }
            }
            Instr::GuardType { test, reg } => {
                let w = self.pes[pe].regs[reg as usize];
                match deref(port, w)? {
                    Deref::Unbound(a) => {
                        self.pes[pe].susp_vars.push(a);
                        self.soft_fail(pe);
                    }
                    Deref::Bound(t) => {
                        let ok = match test {
                            TypeTest::Integer => matches!(t, Tagged::Int(_)),
                            TypeTest::Atom => matches!(t, Tagged::Atom(_) | Tagged::Nil),
                            TypeTest::List => matches!(t, Tagged::List(_)),
                        };
                        if ok {
                            self.pes[pe].pc = next;
                        } else {
                            self.soft_fail(pe);
                        }
                    }
                }
            }
            Instr::Otherwise => {
                if self.pes[pe].susp_vars.is_empty() {
                    self.pes[pe].pc = next;
                } else {
                    // Some earlier clause suspended: `otherwise` must not
                    // commit; suspend the goal.
                    self.start_suspension(pe, port)?;
                }
            }

            // ---- active part ----
            Instr::MoveReg { src, dst } => {
                self.pes[pe].regs[dst as usize] = self.pes[pe].regs[src as usize];
                self.pes[pe].pc = next;
            }
            Instr::PutConst { dst, val } => {
                self.pes[pe].regs[dst as usize] = self.const_word(val);
                self.pes[pe].pc = next;
            }
            Instr::PutVar { dst } => {
                let a = self.pes[pe].alloc.heap(1);
                self.write_heap(port, a, Tagged::Ref(a).encode())?;
                self.pes[pe].regs[dst as usize] = Tagged::Ref(a).encode();
                self.pes[pe].pc = next;
            }
            Instr::PutList { dst, car, cdr } => {
                let a = self.pes[pe].alloc.heap(2);
                self.set_slot(pe, port, a, car)?;
                self.set_slot(pe, port, a + 1, cdr)?;
                self.pes[pe].regs[dst as usize] = Tagged::List(a).encode();
                self.pes[pe].pc = next;
            }
            Instr::PutStruct { dst, functor, args } => {
                let n = args.len() as u64;
                let a = self.pes[pe].alloc.heap(1 + n);
                self.write_heap(port, a, Tagged::Functor(functor, n as u8).encode())?;
                for (i, &op) in args.iter().enumerate() {
                    self.set_slot(pe, port, a + 1 + i as u64, op)?;
                }
                self.pes[pe].regs[dst as usize] = Tagged::Struct(a).encode();
                self.pes[pe].pc = next;
            }
            Instr::BodyIs { dst, op, a, b } => {
                let va = self.num_operand(pe, port, a)?;
                let vb = self.num_operand(pe, port, b)?;
                match (va, vb) {
                    (NumVal::Int(x), NumVal::Int(y)) => {
                        let r = Self::arith(op, x, y)?;
                        self.pes[pe].regs[dst as usize] = Tagged::Int(r).encode();
                        self.pes[pe].pc = next;
                    }
                    _ => {
                        return Err(Abort::Fail(
                            "body arithmetic on unbound or non-integer data \
                             (guard the inputs with integer/1 or a comparison)"
                                .into(),
                        ))
                    }
                }
            }
            Instr::Unify { a, b } => {
                let wa = self.pes[pe].regs[a as usize];
                let wb = self.pes[pe].regs[b as usize];
                if !self.unify(pe, port, wa, wb, 0)? {
                    return Err(Abort::Fail("unification failed in body".into()));
                }
                self.pes[pe].pc = next;
            }
        }
        Ok(())
    }
}
