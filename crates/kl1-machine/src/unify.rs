//! Dereferencing, binding (with per-word locks), active unification, and
//! resumption of suspended goals.

use crate::layout::SUSP_RECORD_WORDS;
use crate::machine::{pv, Abort, Cluster, Mres};
use crate::words::Tagged;
use pim_trace::{Addr, MemoryPort, Word};

/// Result of dereferencing a word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Deref {
    /// A bound value.
    Bound(Tagged),
    /// An unbound variable: the address of its cell.
    Unbound(Addr),
}

/// Follows reference chains with counted reads until a value or an
/// unbound cell (a self-reference or a hooked cell).
pub(crate) fn deref(port: &mut dyn MemoryPort, mut w: Word) -> Mres<Deref> {
    loop {
        match Tagged::decode(w) {
            Tagged::Ref(a) => {
                let w2 = pv(port.read(a))?;
                if w2 == 0 {
                    panic!(
                        "cell {a:#x} reads zero (area {:?})",
                        port.area_map().try_area(a)
                    );
                }
                match Tagged::decode(w2) {
                    Tagged::Ref(b) if b == a => return Ok(Deref::Unbound(a)),
                    Tagged::Hook(_) => return Ok(Deref::Unbound(a)),
                    _ => w = w2,
                }
            }
            Tagged::Hook(_) => {
                unreachable!("hooks live in cells, never in registers")
            }
            t => return Ok(Deref::Bound(t)),
        }
    }
}

/// Reads a cell into register form: a hooked (unbound-with-waiters) cell
/// reads as a reference to itself, so the variable's identity survives.
pub(crate) fn read_cell(port: &mut dyn MemoryPort, addr: Addr) -> Mres<Word> {
    let w = pv(port.read(addr))?;
    if w == 0 {
        panic!(
            "cell {addr:#x} reads zero (area {:?})",
            port.area_map().try_area(addr)
        );
    }
    Ok(match Tagged::decode(w) {
        Tagged::Hook(_) => Tagged::Ref(addr).encode(),
        _ => w,
    })
}

/// Outcome of attempting to bind a variable cell.
enum BindResult {
    /// Bound; any suspended goals were resumed.
    Done,
    /// Another PE bound it first; here is the value found.
    WasBound(Word),
}

impl Cluster {
    /// Active unification (body `=` and `:=` against bound variables).
    ///
    /// Returns `false` on a top-level mismatch (program failure in
    /// committed-choice languages). Bindings lock the variable cell
    /// (`LR`), re-check under the lock, write-unlock (`UW`), and resume
    /// any hooked goals onto this PE's goal list.
    pub(crate) fn unify(
        &mut self,
        pe: usize,
        port: &mut dyn MemoryPort,
        wa: Word,
        wb: Word,
        depth: u32,
    ) -> Mres<bool> {
        if depth > 10_000 {
            return Err(Abort::Fail("unification recursion too deep".into()));
        }
        let da = deref(port, wa)?;
        let db = deref(port, wb)?;
        match (da, db) {
            (Deref::Unbound(a), Deref::Unbound(b)) => {
                if a == b {
                    return Ok(true);
                }
                // Bind the higher cell to the lower (older) one so chains
                // stay acyclic; lock order is by address via this rule.
                let (young, old) = if a > b { (a, b) } else { (b, a) };
                match self.bind(pe, port, young, Tagged::Ref(old).encode())? {
                    BindResult::Done => Ok(true),
                    BindResult::WasBound(w) => {
                        self.unify(pe, port, w, Tagged::Ref(old).encode(), depth + 1)
                    }
                }
            }
            (Deref::Unbound(a), Deref::Bound(v)) | (Deref::Bound(v), Deref::Unbound(a)) => {
                match self.bind(pe, port, a, v.encode())? {
                    BindResult::Done => Ok(true),
                    BindResult::WasBound(w) => self.unify(pe, port, w, v.encode(), depth + 1),
                }
            }
            (Deref::Bound(x), Deref::Bound(y)) => self.unify_bound(pe, port, x, y, depth),
        }
    }

    fn unify_bound(
        &mut self,
        pe: usize,
        port: &mut dyn MemoryPort,
        x: Tagged,
        y: Tagged,
        depth: u32,
    ) -> Mres<bool> {
        match (x, y) {
            (Tagged::Int(a), Tagged::Int(b)) => Ok(a == b),
            (Tagged::Atom(a), Tagged::Atom(b)) => Ok(a == b),
            (Tagged::Nil, Tagged::Nil) => Ok(true),
            (Tagged::List(a), Tagged::List(b)) => {
                if a == b {
                    return Ok(true);
                }
                let car_a = read_cell(port, a)?;
                let car_b = read_cell(port, b)?;
                if !self.unify(pe, port, car_a, car_b, depth + 1)? {
                    return Ok(false);
                }
                let cdr_a = read_cell(port, a + 1)?;
                let cdr_b = read_cell(port, b + 1)?;
                self.unify(pe, port, cdr_a, cdr_b, depth + 1)
            }
            (Tagged::Struct(a), Tagged::Struct(b)) => {
                if a == b {
                    return Ok(true);
                }
                let fa = pv(port.read(a))?;
                let fb = pv(port.read(b))?;
                let (ia, na) = match Tagged::decode(fa) {
                    Tagged::Functor(i, n) => (i, n),
                    other => panic!("structure without functor: {other:?}"),
                };
                let (ib, nb) = match Tagged::decode(fb) {
                    Tagged::Functor(i, n) => (i, n),
                    other => panic!("structure without functor: {other:?}"),
                };
                if ia != ib || na != nb {
                    return Ok(false);
                }
                for i in 0..u64::from(na) {
                    let ca = read_cell(port, a + 1 + i)?;
                    let cb = read_cell(port, b + 1 + i)?;
                    if !self.unify(pe, port, ca, cb, depth + 1)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Binds the variable cell at `cell` to `value` under the hardware
    /// lock, resuming hooked goals. If another PE bound the cell first,
    /// returns the value it found instead.
    fn bind(
        &mut self,
        pe: usize,
        port: &mut dyn MemoryPort,
        cell: Addr,
        value: Word,
    ) -> Mres<BindResult> {
        let w = pv(port.lock_read(cell))?; // stall point
        match Tagged::decode(w) {
            Tagged::Ref(a) if a == cell => {
                pv(port.write_unlock(cell, value))?;
                Ok(BindResult::Done)
            }
            Tagged::Hook(chain) => {
                pv(port.write_unlock(cell, value))?;
                self.resume_chain(pe, port, chain)?;
                Ok(BindResult::Done)
            }
            _ => {
                // Lost the race: someone bound it between our deref and
                // our lock. Unlock and let the caller re-unify.
                pv(port.unlock(cell))?;
                Ok(BindResult::WasBound(w))
            }
        }
    }

    /// Walks a suspension-record chain, moving every still-floating goal
    /// onto this PE's goal list (goal migration to the binder) and
    /// recycling the records. Suspension records are read-once: `ER`/`RP`.
    pub(crate) fn resume_chain(
        &mut self,
        pe: usize,
        port: &mut dyn MemoryPort,
        chain: Addr,
    ) -> Mres<()> {
        let mut cur = Some(chain);
        while let Some(c) = cur {
            let words = self.read_record(port, c, SUSP_RECORD_WORDS)?;
            let goal_rec = match Tagged::decode(words[0]) {
                Tagged::Ref(a) => a,
                other => panic!("suspension record {c:#x} head {other:?}"),
            };
            cur = match Tagged::decode(words[1]) {
                Tagged::Nil => None,
                Tagged::Ref(a) => Some(a),
                other => panic!("suspension record {c:#x} next {other:?}"),
            };
            // One-shot resume: the first binder wins; stale hooks from
            // earlier suspensions of a reused record are skipped.
            if self.floating.remove(&goal_rec) {
                self.pes[pe].deque.push_front(goal_rec);
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.resumption(pim_trace::PeId(pe as u32), port.now(), goal_rec);
                }
            }
            let owner = self.susp_owner(c)?;
            self.pes[owner].alloc.free_susp_record(c);
        }
        Ok(())
    }
}
