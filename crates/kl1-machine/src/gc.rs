//! Stop-and-copy heap garbage collection.
//!
//! The system the paper measured "uses stop-and-copy GC"; this module
//! reproduces that: each PE's heap slice is split into two semispaces
//! (enable with [`crate::ClusterConfig::heap_semispace_words`]), and when
//! any active semispace runs low the cluster performs a global
//! stop-the-world collection **between micro-steps** — every GC memory
//! access (tracing reads, copies, pointer rewrites in goal records) is
//! issued through the memory port and therefore shows up in the reference
//! and bus statistics, exactly like the mutator's own traffic.
//!
//! # Why intervals, not Cheney objects
//!
//! WAM-style terms contain *interior pointers*: a `Ref` may target a cell
//! that is simultaneously an argument slot of a structure (created by
//! `SetOp::Fresh`). Copying "objects" would either duplicate such cells
//! (breaking variable identity) or need a second pass anyway. Instead the
//! collector marks live cells as address *intervals* (a cons contributes
//! `[a, a+2)`, a structure `[a, a+1+n)`, a plain variable `[a, a+1)`),
//! merges overlapping intervals, and relocates each merged interval as a
//! unit — offsets within an interval are preserved, so interior pointers
//! stay valid under the same remapping as everything else.
//!
//! # Safety conditions
//!
//! A collection only starts when no PE holds a variable lock across a
//! step boundary (the suspension engine's `LWAIT` window), because lock
//! directories hold raw addresses. The engine cannot observe GC as a
//! distinct phase: it is one (long) micro-step of the triggering PE, and
//! its cycle cost lands on that PE's clock.

use crate::machine::{pv, Abort, Cluster, Mres, Phase};
use crate::words::Tagged;
use pim_trace::{Addr, MemOp, MemoryPort, PeId, StorageArea, Word};
use std::collections::VecDeque;

/// Statistics of all collections so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Completed collections.
    pub collections: u64,
    /// Live words copied in total.
    pub words_copied: u64,
    /// Words reclaimed (allocated-but-dead at collection time) in total.
    pub words_reclaimed: u64,
}

/// A merged live interval `[from, from + len)` with its relocation target.
#[derive(Debug, Clone, Copy)]
struct Span {
    from: Addr,
    len: u64,
    to: Addr,
}

/// The per-collection working state.
pub(crate) struct Collector {
    /// Sorted, merged live intervals with assigned targets, per PE.
    spans: Vec<Span>,
}

impl Collector {
    fn remap(&self, addr: Addr) -> Addr {
        // Binary search the span containing `addr`.
        let i = self.spans.partition_point(|s| s.from + s.len <= addr);
        match self.spans.get(i) {
            Some(s) if addr >= s.from => s.to + (addr - s.from),
            _ => addr, // not in a moved range (non-heap or already to-space)
        }
    }

    fn remap_word(&self, w: Word) -> Word {
        match Tagged::decode(w) {
            Tagged::Ref(a) => Tagged::Ref(self.remap(a)).encode(),
            Tagged::List(a) => Tagged::List(self.remap(a)).encode(),
            Tagged::Struct(a) => Tagged::Struct(self.remap(a)).encode(),
            // Hooks point into the suspension area, which does not move.
            _ => w,
        }
    }
}

/// The low-water reserve that triggers (and must survive) a collection:
/// enough for the largest single-step allocation (a max-arity structure),
/// scaled down for very small semispaces.
fn gc_margin(semispace: u64) -> u64 {
    (semispace / 4).clamp(64, 512).min(semispace)
}

impl Cluster {
    /// Whether a collection is needed and currently safe to run.
    pub(crate) fn gc_due(&self) -> bool {
        let Some(semi) = self.config.heap_semispace_words else {
            return false;
        };
        let margin = gc_margin(semi);
        let due = self.pes.iter().any(|p| p.alloc.heap_remaining() < margin);
        if !due {
            return false;
        }
        // Unsafe while any PE holds a lock across steps: the lock
        // directory tracks raw addresses.
        self.pes
            .iter()
            .all(|p| !matches!(&p.phase, Phase::Suspend(s) if s.locked))
    }

    /// Runs one global stop-and-copy collection. All memory traffic is
    /// issued through `port` on behalf of the triggering PE.
    pub(crate) fn collect_garbage(&mut self, port: &mut dyn MemoryPort) -> Mres<()> {
        // ---- 1. Gather roots (machine-side words; no memory traffic).
        let mut worklist: VecDeque<Word> = VecDeque::new();
        for pe in &self.pes {
            // Registers carry live values only while a goal is running;
            // idle/suspending PEs' goals live in records, traced below.
            if pe.current.is_some() {
                for &w in &pe.regs {
                    worklist.push_back(w);
                }
            }
            for &v in &pe.susp_vars {
                worklist.push_back(Tagged::Ref(v).encode());
            }
            if let Phase::Suspend(s) = &pe.phase {
                for &v in &s.vars {
                    worklist.push_back(Tagged::Ref(v).encode());
                }
            }
        }
        for (_, a) in &self.query_vars {
            worklist.push_back(Tagged::Ref(*a).encode());
        }
        // Goal records (queued and floating) hold heap references in their
        // argument words; reading them is real traffic.
        let mut records: Vec<Addr> = Vec::new();
        for pe in &self.pes {
            records.extend(pe.deque.iter().copied());
        }
        records.extend(self.floating.iter().copied());
        let mut record_args: Vec<(Addr, u8)> = Vec::new();
        for &rec in &records {
            let header = pv(port.read(rec))?;
            let argc = match Tagged::decode(header) {
                Tagged::Functor(_, n) => n,
                other => panic!("goal record {rec:#x} header {other:?}"),
            };
            for i in 0..u64::from(argc) {
                worklist.push_back(pv(port.read(rec + 1 + i))?);
            }
            record_args.push((rec, argc));
        }

        // ---- 2. Trace: mark live intervals (metadata is machine-side;
        // cell reads are counted).
        let mut intervals: Vec<(Addr, u64)> = Vec::new();
        let mut visited = std::collections::HashSet::new();
        let in_heap = {
            let map = self.config.area_map.clone();
            move |a: Addr| map.try_area(a) == Some(StorageArea::Heap)
        };
        while let Some(w) = worklist.pop_front() {
            match Tagged::decode(w) {
                Tagged::Ref(a) if in_heap(a) && visited.insert(a) => {
                    intervals.push((a, 1));
                    worklist.push_back(pv(port.read(a))?);
                }
                Tagged::List(a) if visited.insert(a) => {
                    intervals.push((a, 2));
                    worklist.push_back(pv(port.read(a))?);
                    worklist.push_back(pv(port.read(a + 1))?);
                }
                Tagged::Struct(a) if visited.insert(a) => {
                    let f = pv(port.read(a))?;
                    let n = match Tagged::decode(f) {
                        Tagged::Functor(_, n) => u64::from(n),
                        other => panic!("structure {a:#x} functor {other:?}"),
                    };
                    intervals.push((a, 1 + n));
                    for i in 0..n {
                        worklist.push_back(pv(port.read(a + 1 + i))?);
                    }
                }
                _ => {}
            }
        }

        // ---- 3. Merge intervals and assign to-space targets per PE.
        intervals.sort_unstable();
        let mut merged: Vec<(Addr, u64)> = Vec::new();
        for (a, len) in intervals {
            match merged.last_mut() {
                Some((ma, mlen)) if a <= *ma + *mlen => {
                    let end = (*ma + *mlen).max(a + len);
                    *mlen = end - *ma;
                }
                _ => merged.push((a, len)),
            }
        }
        let mut spans = Vec::with_capacity(merged.len());
        let mut live_before: u64 = 0;
        // Assign per-PE: intervals are sorted by address and PE slices are
        // contiguous, so walk them in order.
        struct Cursor {
            slice_lo: Addr,
            slice_hi: Addr,
            bump: Addr,
            to_limit: Addr,
        }
        let Some(semi_words) = self.config.heap_semispace_words else {
            unreachable!("collector runs only with semispaces enabled")
        };
        let semi = semi_words.div_ceil(self.config.block_words) * self.config.block_words;
        let mut cursors: Vec<Cursor> = Vec::new();
        for i in 0..self.pes.len() {
            let (lo, hi) = self.layout.slice(StorageArea::Heap, PeId(i as u32));
            let to_base = self.pes[i].alloc.heap_other_semispace();
            cursors.push(Cursor {
                slice_lo: lo,
                slice_hi: hi,
                bump: to_base,
                to_limit: to_base + semi,
            });
        }
        for (a, len) in merged {
            live_before += len;
            let Some(c) = cursors
                .iter_mut()
                .find(|c| a >= c.slice_lo && a < c.slice_hi)
            else {
                unreachable!("live heap interval {a:#x} outside every PE slice")
            };
            let to = c.bump;
            c.bump += len;
            if c.bump > c.to_limit {
                return Err(Abort::Fail(format!(
                    "heap exhausted: live data does not fit a {semi}-word semispace"
                )));
            }
            spans.push(Span { from: a, len, to });
        }
        let collector = Collector { spans };

        // ---- 4. Copy live intervals (counted reads and writes) with
        // pointers rewritten on the fly.
        for s in &collector.spans {
            for i in 0..s.len {
                let w = pv(port.read(s.from + i))?;
                let nw = collector.remap_word(w);
                // To-space blocks are freshly reused memory: direct-write
                // on boundaries, like any new structure.
                let dst = s.to + i;
                let op = if dst % self.config.block_words == 0 {
                    MemOp::DirectWrite
                } else {
                    MemOp::Write
                };
                pv(port.op(op, dst, Some(nw)))?;
            }
        }

        // ---- 5. Rewrite roots.
        for pe in &mut self.pes {
            for w in pe.regs.iter_mut() {
                *w = collector.remap_word(*w);
            }
            for v in pe.susp_vars.iter_mut() {
                *v = collector.remap(*v);
            }
            if let Phase::Suspend(s) = &mut pe.phase {
                for v in s.vars.iter_mut() {
                    *v = collector.remap(*v);
                }
            }
        }
        for (_, a) in self.query_vars.iter_mut() {
            *a = collector.remap(*a);
        }
        for (rec, argc) in record_args {
            for i in 0..u64::from(argc) {
                let slot = rec + 1 + i;
                let w = pv(port.read(slot))?;
                let nw = collector.remap_word(w);
                if nw != w {
                    pv(port.op(MemOp::Write, slot, Some(nw)))?;
                }
            }
        }

        // ---- 6. Flip semispaces.
        let mut allocated_before = 0;
        for (i, c) in cursors.iter().enumerate() {
            allocated_before += self.pes[i].alloc.heap_semispace_used();
            self.pes[i].alloc.flip_semispace(c.bump);
        }
        self.gc_stats.collections += 1;
        self.gc_stats.words_copied += live_before;
        self.gc_stats.words_reclaimed += allocated_before.saturating_sub(live_before);
        let margin = gc_margin(semi);
        if self.pes.iter().any(|p| p.alloc.heap_remaining() < margin) {
            return Err(Abort::Fail(format!(
                "heap exhausted: {live_before} live words leave no allocation room"
            )));
        }
        Ok(())
    }
}
