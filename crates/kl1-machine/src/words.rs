//! Tagged-word encoding of KL1 terms.
//!
//! Every cell of the simulated shared memory holds one 64-bit word with an
//! 8-bit tag in the top byte. An *unbound variable* is a cell containing a
//! self-referencing [`Tagged::Ref`]; an unbound variable with suspended
//! goals hooked to it holds a [`Tagged::Hook`] pointing at its suspension
//! record chain. (The paper's PIM used 40-bit words; the width only
//! matters for directory-size accounting, which is parameterized in
//! `pim-cache`.)

use fghc::instr::{AtomId, FunctorId};
use pim_trace::{Addr, Word};

const TAG_SHIFT: u32 = 56;
const VAL_MASK: u64 = (1 << TAG_SHIFT) - 1;

const TAG_REF: u64 = 1;
const TAG_HOOK: u64 = 2;
const TAG_INT: u64 = 3;
const TAG_ATOM: u64 = 4;
const TAG_NIL: u64 = 5;
const TAG_LIST: u64 = 6;
const TAG_STRUCT: u64 = 7;
const TAG_FUNCTOR: u64 = 8;

/// A decoded KL1 word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tagged {
    /// Reference to a heap cell; a cell referencing itself is an unbound
    /// variable.
    Ref(Addr),
    /// Unbound variable with a suspension-record chain at the address.
    Hook(Addr),
    /// A (56-bit) integer.
    Int(i64),
    /// An atom.
    Atom(AtomId),
    /// The empty list.
    Nil,
    /// Pointer to a cons cell (car at the address, cdr right after).
    List(Addr),
    /// Pointer to a structure (functor word at the address, then args).
    Struct(Addr),
    /// A functor descriptor (only inside structures).
    Functor(FunctorId, u8),
}

impl Tagged {
    /// Encodes to a raw memory word.
    ///
    /// # Panics
    ///
    /// Panics if an address or integer exceeds the 56-bit payload.
    pub fn encode(self) -> Word {
        let (tag, val) = match self {
            Tagged::Ref(a) => (TAG_REF, a),
            Tagged::Hook(a) => (TAG_HOOK, a),
            Tagged::Int(i) => {
                let encoded = (i as u64) & VAL_MASK;
                // Round-trip check: the value must fit in 56 signed bits.
                let back = ((encoded << 8) as i64) >> 8;
                assert_eq!(back, i, "integer {i} exceeds 56-bit payload");
                (TAG_INT, encoded)
            }
            Tagged::Atom(a) => (TAG_ATOM, u64::from(a)),
            Tagged::Nil => (TAG_NIL, 0),
            Tagged::List(a) => (TAG_LIST, a),
            Tagged::Struct(a) => (TAG_STRUCT, a),
            Tagged::Functor(f, n) => (TAG_FUNCTOR, (u64::from(f) << 8) | u64::from(n)),
        };
        assert!(val <= VAL_MASK, "payload {val:#x} exceeds 56 bits");
        (tag << TAG_SHIFT) | val
    }

    /// Decodes a raw memory word.
    ///
    /// # Panics
    ///
    /// Panics on an unknown tag — reading a word that was never written as
    /// a term (a machine bug or a violated `DW` contract).
    pub fn decode(word: Word) -> Tagged {
        let tag = word >> TAG_SHIFT;
        let val = word & VAL_MASK;
        match tag {
            TAG_REF => Tagged::Ref(val),
            TAG_HOOK => Tagged::Hook(val),
            TAG_INT => Tagged::Int(((val << 8) as i64) >> 8),
            TAG_ATOM => Tagged::Atom(val as AtomId),
            TAG_NIL => Tagged::Nil,
            TAG_LIST => Tagged::List(val),
            TAG_STRUCT => Tagged::Struct(val),
            TAG_FUNCTOR => Tagged::Functor((val >> 8) as FunctorId, (val & 0xff) as u8),
            other => panic!("cannot decode word {word:#x}: unknown tag {other}"),
        }
    }

    /// Whether this word can sit in an argument register (everything
    /// except a bare functor descriptor).
    pub fn is_value(self) -> bool {
        !matches!(self, Tagged::Functor(..))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for t in [
            Tagged::Ref(0),
            Tagged::Ref(123_456_789),
            Tagged::Hook(42),
            Tagged::Int(0),
            Tagged::Int(1),
            Tagged::Int(-1),
            Tagged::Int((1 << 55) - 1),
            Tagged::Int(-(1 << 55)),
            Tagged::Atom(0),
            Tagged::Atom(77),
            Tagged::Nil,
            Tagged::List(4096),
            Tagged::Struct(8192),
            Tagged::Functor(3, 2),
        ] {
            assert_eq!(Tagged::decode(t.encode()), t, "{t:?}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 56-bit payload")]
    fn oversized_int_rejected() {
        Tagged::Int(1 << 56).encode();
    }

    #[test]
    #[should_panic(expected = "unknown tag")]
    fn garbage_word_rejected() {
        Tagged::decode(0);
    }

    #[test]
    fn distinct_terms_encode_distinctly() {
        let words = [
            Tagged::Ref(5).encode(),
            Tagged::Hook(5).encode(),
            Tagged::Int(5).encode(),
            Tagged::Atom(5).encode(),
            Tagged::List(5).encode(),
            Tagged::Struct(5).encode(),
            Tagged::Nil.encode(),
        ];
        for (i, a) in words.iter().enumerate() {
            for (j, b) in words.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }
}
