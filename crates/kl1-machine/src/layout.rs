//! Per-PE partitioning of the shared storage areas, and allocators.
//!
//! Each PE allocates heap, goal and suspension records from its own
//! contiguous slice of the corresponding shared area (as the real KL1
//! system gives PEs private allocation chunks), so allocation itself needs
//! no locking. Free-list *structure* is kept machine-side (the paper
//! excludes area-management pointers from measurement); only record
//! *contents* generate memory traffic.

use pim_trace::{Addr, AreaMap, PeId, StorageArea};

/// The per-PE slice boundaries for every area.
#[derive(Debug, Clone)]
pub struct Layout {
    map: AreaMap,
    pes: u32,
    /// Cache-block alignment for direct-write-friendly record placement.
    pub align: u64,
    /// Words per goal record (header + max arity), before alignment.
    pub goal_record_words: u64,
    /// Allocation stride between goal records (aligned).
    pub goal_stride: u64,
}

/// Words per suspension record: `[goal pointer, next hook]`.
pub const SUSP_RECORD_WORDS: u64 = 2;

/// Words per load-balancing reply message: `[goal record addr, donor id]`.
pub const REPLY_WORDS: u64 = 2;

impl Layout {
    /// Builds the layout for `pes` PEs over `map`, with goal records big
    /// enough for `max_arity` arguments and blocks of `align` words.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or any area is too small for `pes`
    /// slices.
    pub fn new(map: AreaMap, pes: u32, max_arity: u8, align: u64) -> Layout {
        assert!(align > 0, "alignment must be positive");
        assert!(pes > 0, "need at least one PE");
        let goal_record_words = 1 + u64::from(max_arity);
        let goal_stride = goal_record_words.div_ceil(align) * align;
        let l = Layout {
            map,
            pes,
            align,
            goal_record_words,
            goal_stride,
        };
        for area in [
            StorageArea::Heap,
            StorageArea::Goal,
            StorageArea::Suspension,
        ] {
            let (base, limit) = l.slice(area, PeId(pes - 1));
            assert!(
                limit > base + goal_stride,
                "{area} area too small for {pes} PEs"
            );
        }
        l
    }

    /// The `[base, limit)` slice of `area` belonging to `pe`, aligned to
    /// block boundaries.
    pub fn slice(&self, area: StorageArea, pe: PeId) -> (Addr, Addr) {
        let base = self.map.base(area);
        let size = self.map.size(area);
        let per_pe = size / u64::from(self.pes) / self.align * self.align;
        let lo = base + per_pe * u64::from(pe.0);
        (lo, lo + per_pe)
    }

    /// The request/reply turnaround buffer for the ordered PE pair
    /// `(requester, donor)`: the requester writes its work request there,
    /// the donor reads it with `RI` and rewrites it in place with the
    /// reply, which the requester reads with `RI` and rewrites with its
    /// next request — the exact "data rewritten just after it is read
    /// from other PE cache" pattern the `RI` command exists for.
    pub fn pair_slot(&self, requester: PeId, donor: PeId) -> Addr {
        // Slots must hold a whole message *and* stay block-aligned, so
        // the stride is REPLY_WORDS rounded up to the block size (for
        // one-word blocks the block size alone would make slots overlap).
        let stride = REPLY_WORDS.div_ceil(self.align) * self.align;
        self.map.base(StorageArea::Communication)
            + (u64::from(requester.0) * u64::from(self.pes) + u64::from(donor.0)) * stride
    }

    /// The area map.
    pub fn map(&self) -> &AreaMap {
        &self.map
    }
}

/// One PE's allocation state.
#[derive(Debug, Clone)]
pub struct PeAllocators {
    /// Heap bump pointer (recycled only by stop-and-copy GC, like the
    /// paper's ever-growing heap).
    pub heap_next: Addr,
    heap_limit: Addr,
    // Semispace GC state: (slice base, semispace words, active-low flag).
    // None = the whole slice is one space and GC never runs.
    semi: Option<(Addr, u64, bool)>,
    goal_next: Addr,
    goal_limit: Addr,
    goal_stride: u64,
    /// Free-list of recycled goal records (machine-side bookkeeping).
    pub goal_free: Vec<Addr>,
    susp_next: Addr,
    susp_limit: Addr,
    // Suspension records are read-once with ER/RP, which purges their
    // whole block without write-back — so records must never share a
    // block with live data: one block-aligned stride per record.
    susp_stride: u64,
    /// Free-list of recycled suspension records.
    pub susp_free: Vec<Addr>,
}

/// Snapshot of allocator bump positions, for aborting a stalled
/// micro-step. Free-list state is deliberately *not* part of the mark: a
/// record freed before the stall (by a committed binding's resumption)
/// stays freed, and a record popped from a free list before the stall is
/// leaked rather than double-allocated — stalls are rare, so the leak is
/// negligible and always safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocMark {
    heap_next: Addr,
    goal_next: Addr,
    susp_next: Addr,
}

impl PeAllocators {
    /// Creates allocators over `pe`'s slices of `layout`. With
    /// `semispace_words = Some(n)` the heap slice is split into two
    /// `n`-word semispaces for stop-and-copy GC (rounded up to block
    /// alignment); otherwise the whole slice is one space.
    ///
    /// # Panics
    ///
    /// Panics if two semispaces do not fit the heap slice.
    pub fn with_semispace(layout: &Layout, pe: PeId, semispace_words: Option<u64>) -> PeAllocators {
        let mut a = PeAllocators::new(layout, pe);
        if let Some(n) = semispace_words {
            let n = n.div_ceil(layout.align) * layout.align;
            let (lo, hi) = layout.slice(StorageArea::Heap, pe);
            assert!(
                lo + 2 * n <= hi,
                "two {n}-word semispaces exceed the heap slice"
            );
            a.heap_next = lo;
            a.heap_limit = lo + n;
            a.semi = Some((lo, n, true));
        }
        a
    }

    /// Creates allocators over `pe`'s slices of `layout`.
    pub fn new(layout: &Layout, pe: PeId) -> PeAllocators {
        let (heap_next, heap_limit) = layout.slice(StorageArea::Heap, pe);
        let (goal_next, goal_limit) = layout.slice(StorageArea::Goal, pe);
        let (susp_next, susp_limit) = layout.slice(StorageArea::Suspension, pe);
        let susp_stride = SUSP_RECORD_WORDS.div_ceil(layout.align) * layout.align;
        PeAllocators {
            heap_next,
            heap_limit,
            semi: None,
            goal_next,
            goal_limit,
            goal_stride: layout.goal_stride,
            goal_free: Vec::new(),
            susp_next,
            susp_limit,
            susp_stride,
            susp_free: Vec::new(),
        }
    }

    /// Allocates `n` heap words.
    ///
    /// # Panics
    ///
    /// Panics when the PE's heap slice is exhausted (the reproduction
    /// sizes slices so benchmarks never need the stop-and-copy GC of the
    /// real system; see DESIGN.md).
    pub fn heap(&mut self, n: u64) -> Addr {
        let a = self.heap_next;
        self.heap_next += n;
        assert!(
            self.heap_next <= self.heap_limit,
            "heap slice exhausted at {a:#x} (+{n})"
        );
        a
    }

    /// Allocates a goal record (block-aligned for `DW`).
    ///
    /// # Panics
    ///
    /// Panics when the goal slice is exhausted.
    pub fn goal_record(&mut self) -> Addr {
        if let Some(a) = self.goal_free.pop() {
            return a;
        }
        let a = self.goal_next;
        self.goal_next += self.goal_stride;
        assert!(self.goal_next <= self.goal_limit, "goal slice exhausted");
        a
    }

    /// Returns a goal record to the free list.
    pub fn free_goal_record(&mut self, addr: Addr) {
        self.goal_free.push(addr);
    }

    /// Allocates a suspension record.
    ///
    /// # Panics
    ///
    /// Panics when the suspension slice is exhausted.
    pub fn susp_record(&mut self) -> Addr {
        if let Some(a) = self.susp_free.pop() {
            return a;
        }
        let a = self.susp_next;
        self.susp_next += self.susp_stride;
        assert!(
            self.susp_next <= self.susp_limit,
            "suspension slice exhausted"
        );
        a
    }

    /// Returns a suspension record to the free list.
    pub fn free_susp_record(&mut self, addr: Addr) {
        self.susp_free.push(addr);
    }

    /// Heap words consumed so far (for Table-1-style reporting).
    pub fn heap_used(&self, layout: &Layout, pe: PeId) -> u64 {
        self.heap_next - layout.slice(StorageArea::Heap, pe).0
    }

    /// Words still available in the active (semi)space.
    pub fn heap_remaining(&self) -> u64 {
        self.heap_limit - self.heap_next
    }

    /// Base address of the inactive semispace (the GC copy target).
    ///
    /// # Panics
    ///
    /// Panics if semispaces are not enabled.
    pub fn heap_other_semispace(&self) -> Addr {
        let Some((lo, n, active_low)) = self.semi else {
            panic!("semispaces not enabled")
        };
        if active_low {
            lo + n
        } else {
            lo
        }
    }

    /// Words allocated in the active semispace so far.
    ///
    /// # Panics
    ///
    /// Panics if semispaces are not enabled.
    pub fn heap_semispace_used(&self) -> u64 {
        let Some((lo, n, active_low)) = self.semi else {
            panic!("semispaces not enabled")
        };
        let base = if active_low { lo } else { lo + n };
        self.heap_next - base
    }

    /// Makes the inactive semispace active, with allocation resuming at
    /// `bump` (one past the last word the collector copied).
    ///
    /// # Panics
    ///
    /// Panics if semispaces are not enabled or `bump` lies outside the
    /// new active semispace.
    pub fn flip_semispace(&mut self, bump: Addr) {
        let Some((lo, n, active_low)) = self.semi else {
            panic!("semispaces not enabled")
        };
        let new_base = if active_low { lo + n } else { lo };
        assert!(
            bump >= new_base && bump <= new_base + n,
            "flip bump {bump:#x} outside semispace [{new_base:#x}, +{n})"
        );
        self.heap_next = bump;
        self.heap_limit = new_base + n;
        self.semi = Some((lo, n, !active_low));
    }

    /// Checkpoint hook: serializes bump pointers, the semispace flag, and
    /// both free lists. Slice limits and strides ride along so a resume
    /// against a different layout is caught.
    pub fn save_ckpt(&self, w: &mut pim_ckpt::Writer) {
        w.put_u64(self.heap_next);
        w.put_u64(self.heap_limit);
        match self.semi {
            Some((lo, n, active_low)) => {
                w.put_bool(true);
                w.put_u64(lo);
                w.put_u64(n);
                w.put_bool(active_low);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.goal_next);
        w.put_u64(self.goal_limit);
        w.put_u64(self.goal_stride);
        w.put_u64s(&self.goal_free);
        w.put_u64(self.susp_next);
        w.put_u64(self.susp_limit);
        w.put_u64(self.susp_stride);
        w.put_u64s(&self.susp_free);
    }

    /// Checkpoint hook: restores state saved by
    /// [`PeAllocators::save_ckpt`] into allocators built over the same
    /// layout and GC configuration.
    ///
    /// # Errors
    ///
    /// [`pim_ckpt::CkptError::Mismatch`] when the slice geometry or
    /// semispace configuration disagrees; [`pim_ckpt::CkptError::Corrupt`]
    /// when a bump pointer lies outside its slice.
    pub fn restore_ckpt(
        &mut self,
        r: &mut pim_ckpt::Reader<'_>,
    ) -> Result<(), pim_ckpt::CkptError> {
        let heap_next = r.get_u64()?;
        let heap_limit = r.get_u64()?;
        let semi = if r.get_bool()? {
            Some((r.get_u64()?, r.get_u64()?, r.get_bool()?))
        } else {
            None
        };
        match (self.semi, semi) {
            (None, None) => {
                if heap_limit != self.heap_limit {
                    return Err(pim_ckpt::CkptError::Mismatch {
                        detail: format!(
                            "heap limit {heap_limit:#x}, allocator has {:#x}",
                            self.heap_limit
                        ),
                    });
                }
            }
            (Some((lo, n, _)), Some((clo, cn, _))) if lo == clo && n == cn => {}
            _ => {
                return Err(pim_ckpt::CkptError::Mismatch {
                    detail: "semispace configuration disagrees with checkpoint".to_string(),
                })
            }
        }
        let goal_next = r.get_u64()?;
        let goal_limit = r.get_u64()?;
        let goal_stride = r.get_u64()?;
        let goal_free = r.get_u64s()?;
        let susp_next = r.get_u64()?;
        let susp_limit = r.get_u64()?;
        let susp_stride = r.get_u64()?;
        let susp_free = r.get_u64s()?;
        if goal_limit != self.goal_limit
            || goal_stride != self.goal_stride
            || susp_limit != self.susp_limit
            || susp_stride != self.susp_stride
        {
            return Err(pim_ckpt::CkptError::Mismatch {
                detail: "allocator slice geometry disagrees with checkpoint".to_string(),
            });
        }
        if heap_next > heap_limit || goal_next > goal_limit || susp_next > susp_limit {
            return Err(pim_ckpt::CkptError::Corrupt {
                detail: "allocator bump pointer beyond its slice limit".to_string(),
            });
        }
        self.heap_next = heap_next;
        self.heap_limit = heap_limit;
        self.semi = semi;
        self.goal_next = goal_next;
        self.goal_free = goal_free;
        self.susp_next = susp_next;
        self.susp_free = susp_free;
        Ok(())
    }

    /// Marks the current allocation state.
    pub fn mark(&self) -> AllocMark {
        AllocMark {
            heap_next: self.heap_next,
            goal_next: self.goal_next,
            susp_next: self.susp_next,
        }
    }

    /// Rolls bump allocations back to `mark` (after a stalled micro-step),
    /// so the retried step writes the same addresses again.
    pub fn rollback(&mut self, mark: AllocMark) {
        self.heap_next = mark.heap_next;
        self.goal_next = mark.goal_next;
        self.susp_next = mark.susp_next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout::new(AreaMap::standard(), 8, 5, 4)
    }

    #[test]
    fn slices_are_disjoint_and_inside_the_area() {
        let l = layout();
        for area in [
            StorageArea::Heap,
            StorageArea::Goal,
            StorageArea::Suspension,
        ] {
            let mut prev_end = l.map().base(area);
            for pe in 0..8 {
                let (lo, hi) = l.slice(area, PeId(pe));
                assert!(lo >= prev_end, "{area} PE{pe}");
                assert!(hi <= l.map().limit(area));
                assert_eq!(lo % 4, 0, "block aligned");
                prev_end = hi;
            }
        }
    }

    #[test]
    fn goal_records_are_aligned_and_strided() {
        let l = layout();
        assert_eq!(l.goal_record_words, 6);
        assert_eq!(l.goal_stride, 8);
        let mut a = PeAllocators::new(&l, PeId(0));
        let r1 = a.goal_record();
        let r2 = a.goal_record();
        assert_eq!(r2 - r1, 8);
        assert_eq!(r1 % 4, 0);
        a.free_goal_record(r1);
        assert_eq!(a.goal_record(), r1, "free list recycles");
    }

    #[test]
    fn heap_bump_allocates_sequentially() {
        let l = layout();
        let mut a = PeAllocators::new(&l, PeId(3));
        let (base, _) = l.slice(StorageArea::Heap, PeId(3));
        assert_eq!(a.heap(2), base);
        assert_eq!(a.heap(1), base + 2);
        assert_eq!(a.heap_used(&l, PeId(3)), 3);
    }

    #[test]
    fn mark_rollback_restores_allocations() {
        let l = layout();
        let mut a = PeAllocators::new(&l, PeId(0));
        let h0 = a.heap_next;
        let mark = a.mark();
        a.heap(10);
        a.goal_record();
        a.susp_record();
        a.rollback(mark);
        assert_eq!(a.heap_next, h0);
        let h = a.heap(1);
        assert_eq!(h, h0, "rolled-back heap words are reallocated");
    }

    #[test]
    fn pair_slots_do_not_collide_at_any_block_size() {
        for align in [1u64, 2, 4, 8, 16] {
            let l = Layout::new(AreaMap::standard(), 8, 5, align);
            let mut slots = Vec::new();
            for q in 0..8 {
                for p in 0..8 {
                    let s = l.pair_slot(PeId(q), PeId(p));
                    assert_eq!(l.map().area(s), StorageArea::Communication);
                    slots.push(s);
                }
            }
            slots.sort_unstable();
            for w in slots.windows(2) {
                assert!(
                    w[1] - w[0] >= REPLY_WORDS,
                    "align={align}: slots {w:?} overlap"
                );
            }
        }
    }

    #[test]
    fn susp_records_recycle() {
        let l = layout();
        let mut a = PeAllocators::new(&l, PeId(0));
        let s = a.susp_record();
        a.free_susp_record(s);
        assert_eq!(a.susp_record(), s);
    }
}
