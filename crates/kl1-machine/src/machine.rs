//! The parallel KL1 abstract machine (cluster of PEs).
//!
//! Execution model (paper Section 2.2): each PE reduces goals from its own
//! goal list, depth-first. A goal is dequeued (its record read once with
//! `ER`/`RP` and recycled), its compiled clauses are tried in order; on
//! commit the body creates new goals (records direct-written once) and the
//! last body call continues in registers. If no clause commits but some
//! suspended, the goal is written back to the goal area as a *floating*
//! record and hooked — under a per-variable hardware lock held across
//! micro-steps — to each suspending variable via suspension records.
//! Binding a hooked variable resumes the floating goals onto the binder's
//! goal list. Idle PEs request work from busy PEs; goals migrate through
//! two-word communication-area messages (written once, read once with
//! `RI`) and the stolen record is read out of the donor's goal area with
//! `ER`, exactly the cache-to-cache pattern the PIM commands optimize.

use crate::error::MachineError;
use crate::layout::{Layout, PeAllocators};
use crate::words::Tagged;
use fghc::instr::{CodeAddr, CompiledProgram, ProcId};
use fghc::Term;
use pim_obs::Observer;
use pim_trace::{Addr, AreaMap, MemOp, MemoryPort, PeId, PortValue, Process, StepOutcome, Word};
use std::collections::{BTreeSet, VecDeque};

/// Why a micro-step could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Abort {
    /// A memory operation hit a remote lock; re-run the step after wake.
    Stall,
    /// The program failed (unification failure, no applicable clause,
    /// arithmetic on unbound data).
    Fail(String),
    /// The machine state is unusable (corrupt record, stray address,
    /// malformed message): halt with a structured diagnostic.
    Fatal(MachineError),
}

pub(crate) type Mres<T> = Result<T, Abort>;

/// Unwraps a [`PortValue`], converting a stall into [`Abort::Stall`].
pub(crate) fn pv(v: PortValue) -> Mres<Word> {
    match v {
        PortValue::Value(w) => Ok(w),
        PortValue::Stall => Err(Abort::Stall),
    }
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of PEs.
    pub pes: u32,
    /// The storage-area partition — must match the memory system's.
    pub area_map: AreaMap,
    /// Cache-block words, for `DW`-friendly record alignment and the
    /// `ER`/`RP` read recipe.
    pub block_words: u64,
    /// Heap semispace size per PE in words: `Some(n)` enables the
    /// stop-and-copy garbage collector of [`crate::gc`] over two `n`-word
    /// semispaces; `None` (the default) gives each PE its whole slice and
    /// never collects.
    pub heap_semispace_words: Option<u64>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            pes: 8,
            area_map: AreaMap::standard(),
            block_words: 4,
            heap_semispace_words: None,
        }
    }
}

/// Per-goal-reduction phase of one PE.
#[derive(Debug, Clone)]
pub(crate) enum Phase {
    /// Needs a goal: pop the local list, consume a reply, or send a
    /// work request.
    Fetch,
    /// Executing instructions at `pc`.
    Run,
    /// Multi-step goal suspension (holds a variable lock across steps).
    Suspend(SuspendState),
}

/// State of an in-progress suspension.
#[derive(Debug, Clone)]
pub(crate) struct SuspendState {
    /// The floating goal record.
    pub rec: Addr,
    /// The variables to hook (deduplicated).
    pub vars: Vec<Addr>,
    /// Next variable index.
    pub idx: usize,
    /// Whether the current variable's lock is held (across a step
    /// boundary — the source of `LWAIT` conflicts).
    pub locked: bool,
    /// The suspension record prepared while the lock is held.
    pub srec: Addr,
}

/// One processing element's machine state (registers and bookkeeping are
/// machine-side; all *terms* live in simulated shared memory).
#[derive(Debug)]
pub(crate) struct PeState {
    pub regs: Vec<Word>,
    pub pc: CodeAddr,
    pub clause_fail: CodeAddr,
    pub susp_vars: Vec<Addr>,
    pub phase: Phase,
    pub current: Option<(ProcId, u8)>,
    pub deque: VecDeque<Addr>,
    pub alloc: PeAllocators,
    pub outstanding_target: Option<u32>,
    pub incoming_requests: VecDeque<u32>,
    pub reply_ready: bool,
    pub next_target: u32,
    pub reductions: u64,
    pub suspensions: u64,
    pub instructions: u64,
}

/// Aggregate machine statistics (the paper's Table 1 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Completed goal reductions.
    pub reductions: u64,
    /// Goal suspensions.
    pub suspensions: u64,
    /// Abstract instructions executed.
    pub instructions: u64,
    /// Goals transferred between PEs by the load balancer.
    pub goals_migrated: u64,
    /// Heap words allocated.
    pub heap_words: u64,
    /// Garbage-collection statistics (all zero when GC is disabled).
    pub gc: crate::gc::GcStats,
}

/// The KL1 machine: a cluster of PEs sharing one memory system.
///
/// Implements [`Process`], so it runs under the `pim-sim` engine (cache
/// simulation) or directly against a `FlatPort` (functional runs and raw
/// reference counting).
#[derive(Debug)]
pub struct Cluster {
    pub(crate) program: CompiledProgram,
    pub(crate) config: ClusterConfig,
    pub(crate) layout: Layout,
    pub(crate) pes: Vec<PeState>,
    pub(crate) inst_base: Addr,
    pub(crate) halted: bool,
    pub(crate) failed: Option<String>,
    /// A fatal machine error, if one halted the run ([`Cluster::machine_error`]).
    pub(crate) fatal: Option<MachineError>,
    pub(crate) booted: bool,
    pub(crate) live_goals: u64,
    // BTreeSet, not HashSet: the GC seeds its root worklist from this set,
    // so iteration order must be deterministic or copy order (and thus bus
    // traffic) varies run to run.
    pub(crate) floating: BTreeSet<Addr>,
    pub(crate) goals_migrated: u64,
    pub(crate) gc_stats: crate::gc::GcStats,
    pub(crate) observer: Option<Box<dyn Observer>>,
    query: Option<(ProcId, Vec<Term>)>,
    pub(crate) query_vars: Vec<(String, Addr)>,
}

impl Cluster {
    /// Builds a cluster for `program`.
    ///
    /// # Panics
    ///
    /// Panics if the compiled code does not fit the instruction area.
    pub fn new(program: CompiledProgram, config: ClusterConfig) -> Cluster {
        let max_arity = program
            .proc_names
            .iter()
            .map(|(_, a)| *a)
            .max()
            .unwrap_or(0);
        let layout = Layout::new(
            config.area_map.clone(),
            config.pes,
            max_arity,
            config.block_words,
        );
        let inst_base = config.area_map.base(pim_trace::StorageArea::Instruction);
        assert!(
            program.total_words <= config.area_map.size(pim_trace::StorageArea::Instruction),
            "program does not fit the instruction area"
        );
        // Registers start as (and are wiped to) Nil so the garbage
        // collector can decode any register word safely.
        let regs = vec![Tagged::Nil.encode(); (program.max_regs as usize + 8).max(32)];
        let pes = (0..config.pes)
            .map(|i| PeState {
                regs: regs.clone(),
                pc: 0,
                clause_fail: 0,
                susp_vars: Vec::new(),
                phase: Phase::Fetch,
                current: None,
                deque: VecDeque::new(),
                alloc: PeAllocators::with_semispace(&layout, PeId(i), config.heap_semispace_words),
                outstanding_target: None,
                incoming_requests: VecDeque::new(),
                reply_ready: false,
                next_target: (i + 1) % config.pes,
                reductions: 0,
                suspensions: 0,
                instructions: 0,
            })
            .collect();
        Cluster {
            program,
            config,
            layout,
            pes,
            inst_base,
            halted: false,
            failed: None,
            fatal: None,
            booted: false,
            live_goals: 0,
            floating: BTreeSet::new(),
            goals_migrated: 0,
            gc_stats: crate::gc::GcStats::default(),
            observer: None,
            query: None,
            query_vars: Vec::new(),
        }
    }

    /// Attaches an observer receiving KL1 machine events (reductions,
    /// suspensions, resumptions, GC pauses, goal-queue depth), stamped
    /// with the port's simulated cycle. With no observer attached (the
    /// default) the machine does no extra work.
    pub fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.observer = Some(observer);
    }

    /// Sets the initial query: `name(args…)` starts on PE 0. Variables in
    /// `args` become fresh heap cells whose bindings can be read back with
    /// [`Cluster::extract`] after the run.
    ///
    /// # Errors
    ///
    /// [`MachineError::UndefinedQuery`] if the procedure does not exist.
    pub fn set_query(&mut self, name: &str, args: Vec<Term>) -> Result<(), MachineError> {
        let Some(proc) = self.program.lookup(name, args.len() as u8) else {
            return Err(MachineError::UndefinedQuery {
                name: name.to_string(),
                arity: args.len() as u8,
            });
        };
        self.query = Some((proc, args));
        Ok(())
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Whether the program failed, and why.
    pub fn failure(&self) -> Option<&str> {
        self.failed.as_deref()
    }

    /// The fatal machine error that halted the run, if any. Always
    /// accompanied by a [`Cluster::failure`] message carrying the same
    /// diagnostic; present only for machine-integrity failures, not
    /// FGHC-level program failures.
    pub fn machine_error(&self) -> Option<&MachineError> {
        self.fatal.as_ref()
    }

    /// Aggregate statistics across PEs.
    pub fn stats(&self) -> MachineStats {
        let mut s = MachineStats {
            goals_migrated: self.goals_migrated,
            gc: self.gc_stats,
            ..MachineStats::default()
        };
        for (i, pe) in self.pes.iter().enumerate() {
            s.reductions += pe.reductions;
            s.suspensions += pe.suspensions;
            s.instructions += pe.instructions;
            s.heap_words += pe.alloc.heap_used(&self.layout, PeId(i as u32));
        }
        s
    }

    /// The heap address of a named query variable (after the run started).
    pub fn query_var(&self, name: &str) -> Option<Addr> {
        self.query_vars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
    }

    /// Decodes the term bound to query variable `name`, reading memory
    /// uncounted through `port`. `None` if the variable is unknown.
    pub fn extract(&self, port: &dyn MemoryPort, name: &str) -> Option<Term> {
        let addr = self.query_var(name)?;
        Some(crate::term_io::extract_term(
            port,
            Tagged::Ref(addr).encode(),
            &self.program.symbols,
        ))
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// A digest of the compiled program (instruction listing), pinned into
    /// checkpoints so a resume against different code is refused.
    fn program_digest(&self) -> u64 {
        pim_ckpt::fnv1a64(format!("{}", self.program).as_bytes())
    }

    fn save_phase(phase: &Phase, w: &mut pim_ckpt::Writer) {
        match phase {
            Phase::Fetch => w.put_u8(0),
            Phase::Run => w.put_u8(1),
            Phase::Suspend(s) => {
                w.put_u8(2);
                w.put_u64(s.rec);
                w.put_u64s(&s.vars);
                w.put_u64(s.idx as u64);
                w.put_bool(s.locked);
                w.put_u64(s.srec);
            }
        }
    }

    fn read_phase(r: &mut pim_ckpt::Reader<'_>) -> Result<Phase, pim_ckpt::CkptError> {
        match r.get_u8()? {
            0 => Ok(Phase::Fetch),
            1 => Ok(Phase::Run),
            2 => {
                let rec = r.get_u64()?;
                let vars = r.get_u64s()?;
                let idx = r.get_u64()? as usize;
                let locked = r.get_bool()?;
                let srec = r.get_u64()?;
                if idx > vars.len() {
                    return Err(pim_ckpt::CkptError::Corrupt {
                        detail: format!("suspension index {idx} beyond {} vars", vars.len()),
                    });
                }
                Ok(Phase::Suspend(SuspendState {
                    rec,
                    vars,
                    idx,
                    locked,
                    srec,
                }))
            }
            tag => Err(pim_ckpt::CkptError::Corrupt {
                detail: format!("unknown PE phase tag {tag}"),
            }),
        }
    }

    /// Checkpoint hook: serializes the complete machine state — every
    /// PE's registers, phase, goal deque, allocators and counters, plus
    /// cluster-wide bookkeeping (floating-goal set, query variables,
    /// runtime symbol-table growth) and a digest of the compiled program.
    /// Term *contents* live in simulated shared memory and travel with the
    /// memory system's own checkpoint, not this one.
    pub fn save_ckpt(&self, w: &mut pim_ckpt::Writer) {
        w.put_u64(self.program_digest());
        w.put_u32(self.config.pes);
        w.put_u64(self.config.block_words);
        w.put_opt_u64(self.config.heap_semispace_words);
        // Runtime symbol growth: atoms/functors interned after compile
        // (query arguments) must exist again for result extraction.
        let symbols = &self.program.symbols;
        w.put_len(symbols.atom_count());
        for id in 0..symbols.atom_count() {
            w.put_str(symbols.atom_name(id as u32));
        }
        w.put_len(symbols.functor_count());
        for id in 0..symbols.functor_count() {
            let (name, arity) = symbols.functor(id as u32);
            w.put_str(name);
            w.put_u8(arity);
        }
        for pe in &self.pes {
            w.put_u64s(&pe.regs);
            w.put_u64(pe.pc as u64);
            w.put_u64(pe.clause_fail as u64);
            w.put_u64s(&pe.susp_vars);
            Cluster::save_phase(&pe.phase, w);
            match pe.current {
                Some((proc, argc)) => {
                    w.put_bool(true);
                    w.put_u32(proc);
                    w.put_u8(argc);
                }
                None => w.put_bool(false),
            }
            w.put_len(pe.deque.len());
            for &rec in &pe.deque {
                w.put_u64(rec);
            }
            pe.alloc.save_ckpt(w);
            w.put_opt_u64(pe.outstanding_target.map(u64::from));
            w.put_len(pe.incoming_requests.len());
            for &q in &pe.incoming_requests {
                w.put_u32(q);
            }
            w.put_bool(pe.reply_ready);
            w.put_u32(pe.next_target);
            w.put_u64(pe.reductions);
            w.put_u64(pe.suspensions);
            w.put_u64(pe.instructions);
        }
        w.put_bool(self.halted);
        match &self.failed {
            Some(msg) => {
                w.put_bool(true);
                w.put_str(msg);
            }
            None => w.put_bool(false),
        }
        w.put_bool(self.booted);
        w.put_u64(self.live_goals);
        let floating: Vec<Addr> = self.floating.iter().copied().collect();
        w.put_u64s(&floating);
        w.put_u64(self.goals_migrated);
        w.put_u64(self.gc_stats.collections);
        w.put_u64(self.gc_stats.words_copied);
        w.put_u64(self.gc_stats.words_reclaimed);
        w.put_len(self.query_vars.len());
        for (name, addr) in &self.query_vars {
            w.put_str(name);
            w.put_u64(*addr);
        }
    }

    /// Checkpoint hook: restores state saved by [`Cluster::save_ckpt`]
    /// into a cluster freshly built from the *same* compiled program and
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`pim_ckpt::CkptError::Mismatch`] when the program digest or
    /// configuration disagrees with the checkpoint;
    /// [`pim_ckpt::CkptError::Corrupt`] on impossible machine state.
    pub fn restore_ckpt(
        &mut self,
        r: &mut pim_ckpt::Reader<'_>,
    ) -> Result<(), pim_ckpt::CkptError> {
        let digest = r.get_u64()?;
        if digest != self.program_digest() {
            return Err(pim_ckpt::CkptError::Mismatch {
                detail: format!(
                    "program digest {digest:#018x} disagrees with compiled program \
                     {:#018x} — resume needs the identical source",
                    self.program_digest()
                ),
            });
        }
        let pes = r.get_u32()?;
        if pes != self.config.pes {
            return Err(pim_ckpt::CkptError::Mismatch {
                detail: format!("checkpoint has {pes} PEs, cluster has {}", self.config.pes),
            });
        }
        let block_words = r.get_u64()?;
        let semispace = r.get_opt_u64()?;
        if block_words != self.config.block_words || semispace != self.config.heap_semispace_words {
            return Err(pim_ckpt::CkptError::Mismatch {
                detail: "block size or GC configuration disagrees with checkpoint".to_string(),
            });
        }
        // Re-intern runtime symbol growth. Interning is append-only and
        // order-stable, so replaying the table reproduces identical ids —
        // anything else means the program changed underneath us.
        let atom_count = r.get_len()?;
        if atom_count < self.program.symbols.atom_count() {
            return Err(pim_ckpt::CkptError::Mismatch {
                detail: "checkpoint symbol table smaller than compiled program's".to_string(),
            });
        }
        for id in 0..atom_count {
            let name = r.get_str()?;
            if self.program.symbols.intern_atom(name) as usize != id {
                return Err(pim_ckpt::CkptError::Mismatch {
                    detail: format!("atom {name:?} interned out of order"),
                });
            }
        }
        let functor_count = r.get_len()?;
        for id in 0..functor_count {
            let name = r.get_str()?.to_string();
            let arity = r.get_u8()?;
            if self.program.symbols.intern_functor(&name, arity) as usize != id {
                return Err(pim_ckpt::CkptError::Mismatch {
                    detail: format!("functor {name}/{arity} interned out of order"),
                });
            }
        }
        for pe in self.pes.iter_mut() {
            let regs = r.get_u64s()?;
            if regs.len() != pe.regs.len() {
                return Err(pim_ckpt::CkptError::Mismatch {
                    detail: format!(
                        "PE register file has {} words, checkpoint {}",
                        pe.regs.len(),
                        regs.len()
                    ),
                });
            }
            pe.regs = regs;
            pe.pc = r.get_u64()? as CodeAddr;
            pe.clause_fail = r.get_u64()? as CodeAddr;
            pe.susp_vars = r.get_u64s()?;
            pe.phase = Cluster::read_phase(r)?;
            pe.current = if r.get_bool()? {
                let proc = r.get_u32()?;
                if proc as usize >= self.program.proc_names.len() {
                    return Err(pim_ckpt::CkptError::Corrupt {
                        detail: format!("current goal references unknown procedure {proc}"),
                    });
                }
                Some((proc, r.get_u8()?))
            } else {
                None
            };
            if pe.pc >= self.program.code.len() && !matches!(pe.phase, Phase::Fetch) {
                return Err(pim_ckpt::CkptError::Corrupt {
                    detail: format!("PE pc {} beyond program end", pe.pc),
                });
            }
            pe.deque = (0..r.get_len()?)
                .map(|_| r.get_u64())
                .collect::<Result<VecDeque<_>, _>>()?;
            pe.alloc.restore_ckpt(r)?;
            pe.outstanding_target = r.get_opt_u64()?.map(|v| v as u32);
            pe.incoming_requests = (0..r.get_len()?)
                .map(|_| r.get_u32())
                .collect::<Result<VecDeque<_>, _>>()?;
            pe.reply_ready = r.get_bool()?;
            pe.next_target = r.get_u32()?;
            pe.reductions = r.get_u64()?;
            pe.suspensions = r.get_u64()?;
            pe.instructions = r.get_u64()?;
        }
        self.halted = r.get_bool()?;
        self.failed = if r.get_bool()? {
            Some(r.get_str()?.to_string())
        } else {
            None
        };
        self.fatal = None;
        self.booted = r.get_bool()?;
        self.live_goals = r.get_u64()?;
        self.floating = r.get_u64s()?.into_iter().collect();
        self.goals_migrated = r.get_u64()?;
        self.gc_stats.collections = r.get_u64()?;
        self.gc_stats.words_copied = r.get_u64()?;
        self.gc_stats.words_reclaimed = r.get_u64()?;
        let n = r.get_len()?;
        self.query_vars = (0..n)
            .map(|_| Ok((r.get_str()?.to_string(), r.get_u64()?)))
            .collect::<Result<Vec<_>, pim_ckpt::CkptError>>()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Booting
    // ------------------------------------------------------------------

    fn boot(&mut self, port: &mut dyn MemoryPort) -> Mres<()> {
        let Some((proc, args)) = self.query.clone() else {
            return Err(Abort::Fatal(MachineError::QueryNotSet));
        };
        let argc = args.len() as u8;
        let mut vars = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            let w = crate::term_io::build_term(
                port,
                &mut self.pes[0].alloc,
                arg,
                &mut vars,
                &mut self.program.symbols,
            );
            self.pes[0].regs[i] = w;
        }
        self.query_vars = vars;
        self.pes[0].current = Some((proc, argc));
        self.pes[0].pc = self.program.entry(proc);
        self.pes[0].phase = Phase::Run;
        self.live_goals = 1;
        self.booted = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Record helpers (the ER/RP read-once recipe and DW write-once)
    // ------------------------------------------------------------------

    /// Writes a fresh record: `DW` on block boundaries, `W` elsewhere.
    pub(crate) fn write_record(
        &self,
        port: &mut dyn MemoryPort,
        base: Addr,
        words: &[Word],
    ) -> Mres<()> {
        for (i, &w) in words.iter().enumerate() {
            let a = base + i as Addr;
            let op = if a.is_multiple_of(self.config.block_words) {
                MemOp::DirectWrite
            } else {
                MemOp::Write
            };
            pv(port.op(op, a, Some(w)))?;
        }
        Ok(())
    }

    /// Reads a read-once record: `ER` throughout, `RP` for a final word
    /// that does not land on a block end (paper Section 3.2).
    pub(crate) fn read_record(
        &self,
        port: &mut dyn MemoryPort,
        base: Addr,
        len: u64,
    ) -> Mres<Vec<Word>> {
        let bw = self.config.block_words;
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let a = base + i;
            let last_of_region = i == len - 1;
            let ends_block = a % bw == bw - 1;
            let op = if last_of_region && !ends_block {
                MemOp::ReadPurge
            } else {
                MemOp::ExclusiveRead
            };
            out.push(pv(port.op(op, a, None))?);
        }
        Ok(out)
    }

    /// Which PE's suspension slice contains `addr`.
    pub(crate) fn susp_owner(&self, addr: Addr) -> Mres<usize> {
        for i in 0..self.pes.len() {
            let (lo, hi) = self
                .layout
                .slice(pim_trace::StorageArea::Suspension, PeId(i as u32));
            if addr >= lo && addr < hi {
                return Ok(i);
            }
        }
        Err(Abort::Fatal(MachineError::AddressOutsideSlices {
            addr,
            area: "suspension",
        }))
    }

    /// Which PE's goal slice contains `addr`.
    pub(crate) fn goal_owner(&self, addr: Addr) -> Mres<usize> {
        for i in 0..self.pes.len() {
            let (lo, hi) = self
                .layout
                .slice(pim_trace::StorageArea::Goal, PeId(i as u32));
            if addr >= lo && addr < hi {
                return Ok(i);
            }
        }
        Err(Abort::Fatal(MachineError::AddressOutsideSlices {
            addr,
            area: "goal",
        }))
    }

    // ------------------------------------------------------------------
    // Goal management
    // ------------------------------------------------------------------

    /// Creates a goal record from header + argument words and returns its
    /// address. The record is *not* enqueued.
    pub(crate) fn make_goal_record(
        &mut self,
        pe: usize,
        port: &mut dyn MemoryPort,
        proc: ProcId,
        args: &[Word],
    ) -> Mres<Addr> {
        let rec = self.pes[pe].alloc.goal_record();
        let mut words = Vec::with_capacity(1 + args.len());
        words.push(Tagged::Functor(proc, args.len() as u8).encode());
        words.extend_from_slice(args);
        self.write_record(port, rec, &words)?;
        Ok(rec)
    }

    /// Loads the goal record at `rec` into `pe`'s registers and recycles
    /// it. Returns `(proc, argc)`.
    fn load_goal_record(
        &mut self,
        pe: usize,
        port: &mut dyn MemoryPort,
        rec: Addr,
    ) -> Mres<(ProcId, u8)> {
        // The header must be read with a plain (non-purging) read: the
        // record's length is not known yet, and an `RP` here would discard
        // the still-unread argument words with the block. The arguments
        // then form one read-once region whose ER/RP purges also cover the
        // header's block.
        let header = pv(port.read(rec))?;
        let (proc, argc) = match Tagged::decode(header) {
            Tagged::Functor(p, n) => (p, n),
            _ => {
                return Err(Abort::Fatal(MachineError::CorruptGoalRecord {
                    rec,
                    word: header,
                }))
            }
        };
        if argc > 0 {
            let args = self.read_record(port, rec + 1, u64::from(argc))?;
            if let Some(&w) = args.iter().find(|&&w| w == 0) {
                return Err(Abort::Fatal(MachineError::CorruptGoalRecord {
                    rec,
                    word: w,
                }));
            }
            self.pes[pe].regs[..argc as usize].copy_from_slice(&args);
        }
        let owner = self.goal_owner(rec)?;
        self.pes[owner].alloc.free_goal_record(rec);
        Ok((proc, argc))
    }

    /// Begins running `proc` with arguments already in registers.
    pub(crate) fn begin_goal(&mut self, pe: usize, proc: ProcId, argc: u8) {
        let st = &mut self.pes[pe];
        st.current = Some((proc, argc));
        st.pc = self.program.entry(proc);
        st.susp_vars.clear();
        st.phase = Phase::Run;
        // Wipe stale temporaries so the garbage collector traces only
        // this goal's values.
        for r in st.regs[usize::from(argc)..].iter_mut() {
            *r = Tagged::Nil.encode();
        }
    }

    // ------------------------------------------------------------------
    // Load balancing (paper Section 2.2: on-demand scheduler)
    // ------------------------------------------------------------------

    /// Donates one goal to a waiting requester, if we have a surplus.
    /// Returns `true` if a reply was written.
    fn serve_request(&mut self, pe: usize, port: &mut dyn MemoryPort) -> Mres<bool> {
        if self.pes[pe].incoming_requests.is_empty() {
            return Ok(false);
        }
        if self.pes[pe].deque.is_empty() {
            // Nothing to give: decline (status lines, uncounted) so the
            // requesters can retarget.
            while let Some(q) = self.pes[pe].incoming_requests.pop_front() {
                self.pes[q as usize].outstanding_target = None;
            }
            return Ok(false);
        }
        let q = self.pes[pe].incoming_requests[0] as usize;
        // Steal from the back: the oldest goal, usually the largest
        // remaining subtree.
        let Some(&rec) = self.pes[pe].deque.back() else {
            unreachable!("work-request reply path checked the deque is non-empty")
        };
        let slot = self.layout.pair_slot(PeId(q as u32), PeId(pe as u32));
        // Read the request message with RI — we are about to rewrite the
        // buffer in place with the reply.
        pv(port.op(MemOp::ReadInvalidate, slot, None))?;
        pv(port.op(MemOp::ReadInvalidate, slot + 1, None))?;
        pv(port.op(MemOp::Write, slot, Some(Tagged::Int(rec as i64).encode())))?;
        pv(port.op(
            MemOp::Write,
            slot + 1,
            Some(Tagged::Int(pe as i64).encode()),
        ))?;
        // Commit the transfer only after all counted operations succeeded.
        self.pes[pe].incoming_requests.pop_front();
        self.pes[pe].deque.pop_back();
        self.pes[q].reply_ready = true;
        self.goals_migrated += 1;
        Ok(true)
    }

    /// One scheduling action for a PE with no goal. Returns the outcome.
    fn fetch_step(&mut self, pe: usize, port: &mut dyn MemoryPort) -> Mres<StepOutcome> {
        // Local goal available?
        if let Some(&rec) = self.pes[pe].deque.front() {
            let (proc, argc) = self.load_goal_record(pe, port, rec)?;
            self.pes[pe].deque.pop_front();
            self.begin_goal(pe, proc, argc);
            return Ok(StepOutcome::Ran);
        }
        // A donated goal arrived?
        if self.pes[pe].reply_ready {
            let Some(donor) = self.pes[pe].outstanding_target else {
                return Err(Abort::Fatal(MachineError::ReplyWithoutRequest {
                    pe: pe as u32,
                }));
            };
            let slot = self.layout.pair_slot(PeId(pe as u32), PeId(donor));
            // Read the reply with RI — this buffer is rewritten in place
            // by our next request to the same donor.
            let w0 = pv(port.op(MemOp::ReadInvalidate, slot, None))?;
            let _donor_id = pv(port.op(MemOp::ReadInvalidate, slot + 1, None))?;
            let rec = match Tagged::decode(w0) {
                Tagged::Int(a) => a as Addr,
                _ => {
                    return Err(Abort::Fatal(MachineError::BadReplyMessage {
                        pe: pe as u32,
                        word: w0,
                    }))
                }
            };
            self.pes[pe].reply_ready = false;
            self.pes[pe].outstanding_target = None;
            let (proc, argc) = self.load_goal_record(pe, port, rec)?;
            self.begin_goal(pe, proc, argc);
            return Ok(StepOutcome::Ran);
        }
        // Ask a busy PE for work: write a two-word request message into
        // the pair's turnaround buffer (written once, read once by the
        // donor with RI).
        if self.pes[pe].outstanding_target.is_none() {
            let n = self.pes.len();
            let start = self.pes[pe].next_target as usize;
            for k in 0..n {
                let t = (start + k) % n;
                if t != pe && !self.pes[t].deque.is_empty() {
                    let slot = self.layout.pair_slot(PeId(pe as u32), PeId(t as u32));
                    pv(port.op(MemOp::Write, slot, Some(Tagged::Int(1).encode())))?;
                    pv(port.op(
                        MemOp::Write,
                        slot + 1,
                        Some(Tagged::Int(pe as i64).encode()),
                    ))?;
                    self.pes[t].incoming_requests.push_back(pe as u32);
                    self.pes[pe].outstanding_target = Some(t as u32);
                    self.pes[pe].next_target = ((t + 1) % n) as u32;
                    return Ok(StepOutcome::Idle);
                }
            }
        }
        // Nothing anywhere: terminal?
        let quiescent = self
            .pes
            .iter()
            .all(|p| matches!(p.phase, Phase::Fetch) && p.deque.is_empty() && !p.reply_ready);
        if quiescent {
            if self.live_goals == 0 {
                self.halted = true;
                return Ok(StepOutcome::Finished);
            }
            if self.live_goals == self.floating.len() as u64 {
                let mut procs: Vec<String> = self
                    .floating
                    .iter()
                    .map(|&rec| {
                        let header = port.peek(rec);
                        match Tagged::decode(header) {
                            Tagged::Functor(p, n) => {
                                let (name, _) = &self.program.proc_names[p as usize];
                                format!("{name}/{n}")
                            }
                            other => format!("<bad header {other:?}>"),
                        }
                    })
                    .collect();
                procs.sort();
                self.failed = Some(format!(
                    "perpetual suspension: {} goal(s) still waiting on unbound variables: {}",
                    self.floating.len(),
                    procs.join(", ")
                ));
                self.halted = true;
                return Ok(StepOutcome::Finished);
            }
        }
        Ok(StepOutcome::Idle)
    }

    // ------------------------------------------------------------------
    // The suspension state machine (multi-step; holds a lock across one
    // step boundary — the LWAIT window of Table 5)
    // ------------------------------------------------------------------

    fn suspend_step(&mut self, pe: usize, port: &mut dyn MemoryPort) -> Mres<StepOutcome> {
        let mut st = match &self.pes[pe].phase {
            Phase::Suspend(s) => s.clone(),
            other => unreachable!("suspend_step in {other:?}"),
        };
        // Already resumed by a binder (possibly spuriously)? Stop hooking.
        if !self.floating.contains(&st.rec) {
            self.pes[pe].phase = Phase::Fetch;
            return Ok(StepOutcome::Ran);
        }
        if st.locked {
            // Second half: publish the hook and release the lock.
            let v = st.vars[st.idx];
            pv(port.write_unlock(v, Tagged::Hook(st.srec).encode()))?;
            st.locked = false;
            st.idx += 1;
            self.pes[pe].phase = if st.idx == st.vars.len() {
                Phase::Fetch
            } else {
                Phase::Suspend(st)
            };
            return Ok(StepOutcome::Ran);
        }
        let v = st.vars[st.idx];
        let w = pv(port.lock_read(v))?; // stall point (nothing held yet)
        match Tagged::decode(w) {
            Tagged::Ref(a) if a == v => {
                // Still unbound, no previous waiters.
                let srec = self.pes[pe].alloc.susp_record();
                self.write_record(
                    port,
                    srec,
                    &[Tagged::Ref(st.rec).encode(), Tagged::Nil.encode()],
                )?;
                st.srec = srec;
                st.locked = true;
                self.pes[pe].phase = Phase::Suspend(st);
            }
            Tagged::Hook(prev) => {
                // Unbound with existing waiters: chain in front.
                let srec = self.pes[pe].alloc.susp_record();
                self.write_record(
                    port,
                    srec,
                    &[Tagged::Ref(st.rec).encode(), Tagged::Ref(prev).encode()],
                )?;
                st.srec = srec;
                st.locked = true;
                self.pes[pe].phase = Phase::Suspend(st);
            }
            _bound => {
                // The variable was bound while we prepared to hook: the
                // goal is runnable again right now.
                pv(port.unlock(v))?;
                if self.floating.remove(&st.rec) {
                    self.pes[pe].deque.push_front(st.rec);
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.resumption(PeId(pe as u32), port.now(), st.rec);
                    }
                }
                self.pes[pe].phase = Phase::Fetch;
            }
        }
        Ok(StepOutcome::Ran)
    }

    /// Enters the suspension phase from `NoMoreClauses` (same step):
    /// writes the floating goal record and queues the variable hooks.
    pub(crate) fn start_suspension(&mut self, pe: usize, port: &mut dyn MemoryPort) -> Mres<()> {
        let Some((proc, argc)) = self.pes[pe].current else {
            unreachable!("suspending without a goal");
        };
        let mut vars = std::mem::take(&mut self.pes[pe].susp_vars);
        vars.sort_unstable();
        vars.dedup();
        debug_assert!(!vars.is_empty());
        let args: Vec<Word> = self.pes[pe].regs[..argc as usize].to_vec();
        let rec = self.make_goal_record(pe, port, proc, &args)?;
        self.floating.insert(rec);
        self.pes[pe].suspensions += 1;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.suspension(PeId(pe as u32), port.now(), rec);
        }
        self.pes[pe].current = None;
        self.pes[pe].phase = Phase::Suspend(SuspendState {
            rec,
            vars,
            idx: 0,
            locked: false,
            srec: 0,
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Step machinery
    // ------------------------------------------------------------------

    fn snapshot(&self, pe: usize) -> Undo {
        let st = &self.pes[pe];
        Undo {
            pc: st.pc,
            clause_fail: st.clause_fail,
            susp_len: st.susp_vars.len(),
            phase: st.phase.clone(),
            current: st.current,
            alloc: st.alloc.mark(),
        }
    }

    fn restore(&mut self, pe: usize, undo: Undo) {
        let st = &mut self.pes[pe];
        st.pc = undo.pc;
        st.clause_fail = undo.clause_fail;
        st.susp_vars.truncate(undo.susp_len);
        st.phase = undo.phase;
        st.current = undo.current;
        st.alloc.rollback(undo.alloc);
    }
}

struct Undo {
    pc: CodeAddr,
    clause_fail: CodeAddr,
    susp_len: usize,
    phase: Phase,
    current: Option<(ProcId, u8)>,
    alloc: crate::layout::AllocMark,
}

impl Process for Cluster {
    fn pe_count(&self) -> u32 {
        self.config.pes
    }

    fn step(&mut self, pe: PeId, port: &mut dyn MemoryPort) -> StepOutcome {
        if self.halted {
            return StepOutcome::Finished;
        }
        let pe = pe.index();
        let undo = self.snapshot(pe);

        let result = (|| -> Mres<StepOutcome> {
            if !self.booted {
                self.boot(port)?;
            }
            // Stop-and-copy GC runs between micro-steps, when no PE holds
            // a cross-step variable lock.
            if self.gc_due() {
                let _perf = pim_perf::span(pim_perf::phase::GC);
                let copied_before = self.gc_stats.words_copied;
                self.collect_garbage(port)?;
                if let Some(obs) = self.observer.as_deref_mut() {
                    let copied = self.gc_stats.words_copied - copied_before;
                    obs.gc(PeId(pe as u32), port.now(), copied);
                }
                return Ok(StepOutcome::Ran);
            }
            // Donor side of the load balancer runs between any two
            // micro-steps.
            if self.serve_request(pe, port)? {
                return Ok(StepOutcome::Ran);
            }
            match self.pes[pe].phase.clone() {
                Phase::Fetch => self.fetch_step(pe, port),
                Phase::Run => {
                    self.exec_instr(pe, port)?;
                    Ok(StepOutcome::Ran)
                }
                Phase::Suspend(_) => self.suspend_step(pe, port),
            }
        })();

        if let Some(obs) = self.observer.as_deref_mut() {
            obs.goal_queue_depth(PeId(pe as u32), port.now(), self.pes[pe].deque.len() as u64);
        }

        match result {
            Ok(outcome) => outcome,
            Err(Abort::Stall) => {
                self.restore(pe, undo);
                StepOutcome::Stalled
            }
            Err(Abort::Fail(msg)) => {
                self.failed = Some(msg);
                self.halted = true;
                StepOutcome::Finished
            }
            Err(Abort::Fatal(err)) => {
                self.failed = Some(err.to_string());
                self.fatal = Some(err);
                self.halted = true;
                StepOutcome::Finished
            }
        }
    }
}

/// Validates that a reply-slot message round-trips (unit-level sanity of
/// the encoding used by the load balancer).
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_encoding_round_trips() {
        let w = Tagged::Int(12_345).encode();
        match Tagged::decode(w) {
            Tagged::Int(v) => assert_eq!(v, 12_345),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cluster_builds_for_default_config() {
        let prog = fghc::compile("main :- true | halt.").unwrap();
        let c = Cluster::new(prog, ClusterConfig::default());
        assert_eq!(c.pe_count(), 8);
        assert!(c.failure().is_none());
    }
}
