//! A flat (cache-less) memory port for functional runs and raw reference
//! counting.

use pim_trace::{Access, Addr, AreaMap, MemOp, MemoryPort, PeId, PortValue, RefStats, Word};
use std::collections::HashMap;

const PAGE_WORDS: usize = 4096;

/// A [`MemoryPort`] backed by a plain paged address space.
///
/// There is no cache model and no timing, but **lock mutual exclusion is
/// still enforced**: an `LR` on a word locked by another PE stalls, since
/// the machine holds variable locks across micro-steps (during goal
/// suspension) and overwriting a concurrent binding would corrupt the
/// program. References are tallied into a [`RefStats`]. This is the
/// measurement mode behind the Table 1 reference columns and all
/// functional tests of the machine.
///
/// # Examples
///
/// ```
/// use kl1_machine::FlatPort;
/// use pim_trace::{MemoryPort, PortValue, StorageArea};
///
/// let mut port = FlatPort::new(1);
/// let heap = port.area_map().base(StorageArea::Heap);
/// port.direct_write(heap, 7);
/// assert_eq!(port.read(heap), PortValue::Value(7));
/// assert_eq!(port.stats().total(), 2);
/// ```
#[derive(Debug, Default)]
pub struct FlatPort {
    map: AreaMap,
    pages: HashMap<u64, Box<[Word; PAGE_WORDS]>>,
    /// Per-PE reference statistics (merged view via [`FlatPort::stats`]).
    per_pe: Vec<RefStats>,
    current_pe: PeId,
    locks: HashMap<Addr, u32>,
}

impl FlatPort {
    /// Creates a flat port over the standard area map for `pes` PEs.
    pub fn new(pes: u32) -> FlatPort {
        FlatPort {
            map: AreaMap::standard(),
            pages: HashMap::new(),
            per_pe: vec![RefStats::new(); pes as usize],
            current_pe: PeId(0),
            locks: HashMap::new(),
        }
    }

    /// Selects which PE subsequent operations are attributed to.
    pub fn set_pe(&mut self, pe: PeId) {
        assert!(pe.index() < self.per_pe.len(), "unknown {pe}");
        self.current_pe = pe;
    }

    /// The merged reference statistics across PEs.
    pub fn stats(&self) -> RefStats {
        let mut out = RefStats::new();
        for s in &self.per_pe {
            out.merge(s);
        }
        out
    }

    /// Reference statistics of one PE.
    pub fn pe_stats(&self, pe: PeId) -> &RefStats {
        &self.per_pe[pe.index()]
    }

    fn slot(&mut self, addr: Addr) -> &mut Word {
        let page = addr / PAGE_WORDS as u64;
        let off = (addr % PAGE_WORDS as u64) as usize;
        &mut self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]))[off]
    }

    fn load(&self, addr: Addr) -> Word {
        let page = addr / PAGE_WORDS as u64;
        let off = (addr % PAGE_WORDS as u64) as usize;
        self.pages.get(&page).map_or(0, |p| p[off])
    }
}

impl MemoryPort for FlatPort {
    fn op(&mut self, op: MemOp, addr: Addr, data: Option<Word>) -> PortValue {
        let me = self.current_pe.0;
        match op {
            MemOp::LockRead => match self.locks.get(&addr) {
                Some(&holder) if holder != me => return PortValue::Stall,
                Some(_) => panic!("PE{me} relocked {addr:#x}"),
                None => {
                    self.locks.insert(addr, me);
                }
            },
            MemOp::WriteUnlock | MemOp::Unlock => match self.locks.remove(&addr) {
                Some(holder) if holder == me => {}
                other => panic!("PE{me} unlocked {addr:#x} held by {other:?}"),
            },
            _ => {}
        }
        let area = self.map.area(addr);
        self.per_pe[self.current_pe.index()].record(Access::new(self.current_pe, op, addr, area));
        if op.is_write() {
            let Some(value) = data else {
                unreachable!("write operations always carry a data word")
            };
            *self.slot(addr) = value;
            PortValue::Value(value)
        } else {
            PortValue::Value(self.load(addr))
        }
    }

    fn peek(&self, addr: Addr) -> Word {
        self.load(addr)
    }

    fn poke(&mut self, addr: Addr, value: Word) {
        *self.slot(addr) = value;
    }

    fn area_map(&self) -> &AreaMap {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::StorageArea;

    #[test]
    fn counts_per_pe_and_merges() {
        let mut p = FlatPort::new(2);
        let h = p.area_map().base(StorageArea::Heap);
        p.set_pe(PeId(0));
        p.write(h, 1);
        p.set_pe(PeId(1));
        p.read(h);
        p.read(h + 1);
        assert_eq!(p.pe_stats(PeId(0)).total(), 1);
        assert_eq!(p.pe_stats(PeId(1)).total(), 2);
        assert_eq!(p.stats().total(), 3);
    }

    #[test]
    fn own_locks_succeed_and_release() {
        let mut p = FlatPort::new(1);
        let h = p.area_map().base(StorageArea::Heap);
        assert_eq!(p.lock_read(h), PortValue::Value(0));
        assert_eq!(p.write_unlock(h, 9), PortValue::Value(9));
        assert_eq!(p.read(h), PortValue::Value(9));
        assert_eq!(p.lock_read(h), PortValue::Value(9));
        assert_eq!(p.unlock(h), PortValue::Value(9));
    }

    #[test]
    fn cross_pe_lock_conflicts_stall() {
        let mut p = FlatPort::new(2);
        let h = p.area_map().base(StorageArea::Heap);
        p.set_pe(PeId(0));
        assert_eq!(p.lock_read(h), PortValue::Value(0));
        p.set_pe(PeId(1));
        assert_eq!(p.lock_read(h), PortValue::Stall);
        p.set_pe(PeId(0));
        assert_eq!(p.write_unlock(h, 5), PortValue::Value(5));
        p.set_pe(PeId(1));
        assert_eq!(p.lock_read(h), PortValue::Value(5));
    }

    #[test]
    fn poke_and_peek_bypass_counting() {
        let mut p = FlatPort::new(1);
        p.poke(100, 5);
        assert_eq!(p.peek(100), 5);
        assert_eq!(p.stats().total(), 0);
    }
}
