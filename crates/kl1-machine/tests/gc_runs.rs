//! Stop-and-copy GC tests: programs that exhaust small semispaces must
//! trigger collections, survive them, and still compute correct answers —
//! on the flat port and through the full PIM cache simulation.

use fghc::Term;
use kl1_machine::{run_flat, Cluster, ClusterConfig};
use pim_cache::{PimSystem, SystemConfig};
use pim_sim::Engine;
use pim_trace::PeId;

/// Allocates heavily (naive reverse keeps only the latest list alive, so
/// almost everything is garbage at every collection).
const CHURN: &str = "
    main(X) :- true | loop(40, X).
    loop(0, X) :- true | X = done.
    loop(N, X) :- N > 0 |
        build(60, L), rev(L, [], R), use(R, Ok),
        next(Ok, N, X).
    next(ok, N, X) :- true | N1 := N - 1, loop(N1, X).
    build(0, L) :- true | L = [].
    build(K, L) :- K > 0 | L = [K|T], K1 := K - 1, build(K1, T).
    rev([], A, R) :- true | R = A.
    rev([H|T], A, R) :- true | rev(T, [H|A], R).
    use([H|_], Ok) :- integer(H) | Ok = ok.
";

/// Keeps a long-lived structure alive across collections while churning.
const KEEPER: &str = "
    main(X) :- true | build(50, Keep), churn(30, Keep, X).
    churn(0, Keep, X) :- true | sum(Keep, 0, X).
    churn(N, Keep, X) :- N > 0 |
        build(40, Junk), use(Junk, Ok),
        step(Ok, N, Keep, X).
    step(ok, N, Keep, X) :- true | N1 := N - 1, churn(N1, Keep, X).
    build(0, L) :- true | L = [].
    build(K, L) :- K > 0 | L = [K|T], K1 := K - 1, build(K1, T).
    use([H|_], Ok) :- integer(H) | Ok = ok.
    sum([], A, S) :- true | S = A.
    sum([H|T], A, S) :- true | A1 := A + H, sum(T, A1, S).
";

fn cluster(src: &str, pes: u32, semispace: u64) -> Cluster {
    let program = fghc::compile(src).unwrap();
    let mut cluster = Cluster::new(
        program,
        ClusterConfig {
            pes,
            heap_semispace_words: Some(semispace),
            ..Default::default()
        },
    );
    cluster
        .set_query("main", vec![Term::Var("X".into())])
        .expect("query procedure exists");
    cluster
}

#[test]
fn churn_survives_many_collections_flat() {
    let mut c = cluster(CHURN, 1, 2048);
    let port = run_flat(&mut c, 100_000_000);
    assert_eq!(c.extract(&port, "X").unwrap(), Term::Atom("done".into()));
    let gc = c.stats().gc;
    assert!(gc.collections >= 2, "expected collections, got {gc:?}");
    assert!(
        gc.words_reclaimed > gc.words_copied,
        "mostly garbage: {gc:?}"
    );
}

#[test]
fn long_lived_data_survives_collections() {
    let mut c = cluster(KEEPER, 1, 2048);
    let port = run_flat(&mut c, 100_000_000);
    // sum(1..=50) = 1275 — the kept list must be intact after every GC.
    assert_eq!(c.extract(&port, "X").unwrap(), Term::Int(1275));
    assert!(c.stats().gc.collections >= 1, "{:?}", c.stats().gc);
}

#[test]
fn gc_works_under_the_full_cache_simulation() {
    let mut c = cluster(CHURN, 2, 2048);
    let system = PimSystem::new(SystemConfig {
        pes: 2,
        ..Default::default()
    });
    let mut engine = Engine::new(system, 2);
    let stats = engine.run(&mut c, 1_000_000_000).expect("fault-free run");
    assert!(stats.finished, "did not finish");
    assert!(c.failure().is_none(), "{:?}", c.failure());
    let answer = engine.with_port(PeId(0), |p| c.extract(p, "X").unwrap());
    assert_eq!(answer, Term::Atom("done".into()));
    assert!(c.stats().gc.collections >= 2);
    engine.system().check_coherence_invariants().unwrap();
    // GC traffic is real traffic: heap reads/writes went through the bus.
    assert!(engine.system().bus_stats().total_cycles() > 0);
}

#[test]
fn gc_with_multiple_pes_and_migration() {
    let mut c = cluster(KEEPER, 4, 4096);
    let system = PimSystem::new(SystemConfig {
        pes: 4,
        ..Default::default()
    });
    let mut engine = Engine::new(system, 4);
    let stats = engine.run(&mut c, 1_000_000_000).expect("fault-free run");
    assert!(stats.finished && c.failure().is_none(), "{:?}", c.failure());
    let answer = engine.with_port(PeId(0), |p| c.extract(p, "X").unwrap());
    assert_eq!(answer, Term::Int(1275));
}

#[test]
fn too_small_semispace_fails_gracefully() {
    // The kept structure alone exceeds the semispace: the machine must
    // report heap exhaustion, not corrupt memory or hang.
    let mut c = cluster(KEEPER, 1, 64);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_flat(&mut c, 100_000_000)
    }));
    assert!(result.is_err());
}

#[test]
fn disabled_gc_never_collects() {
    let program = fghc::compile(CHURN).unwrap();
    let mut c = Cluster::new(
        program,
        ClusterConfig {
            pes: 1,
            ..Default::default()
        },
    );
    c.set_query("main", vec![Term::Var("X".into())])
        .expect("query procedure exists");
    let port = run_flat(&mut c, 100_000_000);
    assert_eq!(c.extract(&port, "X").unwrap(), Term::Atom("done".into()));
    assert_eq!(c.stats().gc.collections, 0);
}

#[test]
fn benchmarks_compute_correct_answers_under_gc_pressure() {
    use workloads::{Bench, Scale};
    // Run the real benchmarks with semispaces small enough to force
    // collections; the oracle validation is the correctness check.
    for bench in [Bench::Pascal, Bench::Tri] {
        let program = fghc::compile(bench.source()).unwrap();
        let mut c = Cluster::new(
            program,
            ClusterConfig {
                pes: 2,
                heap_semispace_words: Some(16 * 1024),
                ..Default::default()
            },
        );
        let (proc, args) = bench.query(Scale::smoke());
        c.set_query(proc, args).expect("query procedure exists");
        let port = run_flat(&mut c, 500_000_000);
        let answer = c.extract(&port, "R").unwrap();
        assert_eq!(
            answer,
            workloads::reference::expected(bench, Scale::smoke()),
            "{} under GC pressure",
            bench.name()
        );
    }
}
