//! Full-stack tests: FGHC programs running through the pim-sim engine on
//! the real PIM cache system (and the Illinois baseline), checking both
//! functional answers and the qualitative traffic properties the paper's
//! optimizations rely on.

use fghc::Term;
use kl1_machine::{Cluster, ClusterConfig};
use pim_cache::{OptMask, PimSystem, SystemConfig};
use pim_sim::{Engine, IllinoisSystem, MemorySystem};
use pim_trace::{MemOp, PeId, StorageArea};

const FIB: &str = "
    main(F) :- true | fib(12, F).
    fib(N, F) :- N < 2 | F = N.
    fib(N, F) :- N >= 2 |
        N1 := N - 1, N2 := N - 2,
        fib(N1, F1), fib(N2, F2), add(F1, F2, F).
    add(A, B, C) :- integer(A), integer(B) | C := A + B.
";

const STREAM: &str = "
    main(S) :- true | gen(60, L), sum(L, 0, S).
    gen(0, L) :- true | L = [].
    gen(N, L) :- N > 0 | L = [N|T], N1 := N - 1, gen(N1, T).
    sum([], A, S) :- true | S = A.
    sum([H|T], A, S) :- true | A1 := A + H, sum(T, A1, S).
";

fn run_on_pim(src: &str, pes: u32, mask: OptMask) -> (Cluster, Engine<PimSystem>) {
    let program = fghc::compile(src).expect("compiles");
    let mut cluster = Cluster::new(
        program,
        ClusterConfig {
            pes,
            ..ClusterConfig::default()
        },
    );
    cluster
        .set_query("main", vec![Term::Var("R".into())])
        .expect("query procedure exists");
    let system = PimSystem::new(SystemConfig {
        pes,
        opt_mask: mask,
        ..SystemConfig::default()
    });
    let mut engine = Engine::new(system, pes);
    let stats = engine
        .run(&mut cluster, 500_000_000)
        .expect("fault-free run");
    assert!(stats.finished, "program did not finish");
    assert!(cluster.failure().is_none(), "{:?}", cluster.failure());
    (cluster, engine)
}

fn result_of(cluster: &Cluster, engine: &mut Engine<PimSystem>) -> Term {
    engine.with_port(PeId(0), |port| cluster.extract(port, "R").unwrap())
}

#[test]
fn fib_computes_correctly_on_the_pim_cache_with_8_pes() {
    let (cluster, mut engine) = run_on_pim(FIB, 8, OptMask::all());
    assert_eq!(result_of(&cluster, &mut engine), Term::Int(144));
    let sys = engine.system();
    sys.check_coherence_invariants().unwrap();
    // The machine exercised every command family.
    let refs = sys.ref_stats();
    assert!(refs.count(StorageArea::Heap, MemOp::DirectWrite) > 0);
    assert!(refs.count(StorageArea::Goal, MemOp::ExclusiveRead) > 0);
    assert!(refs.count(StorageArea::Heap, MemOp::LockRead) > 0);
    assert!(refs.count(StorageArea::Communication, MemOp::ReadInvalidate) > 0);
    assert!(sys.lock_stats().lr_total > 0);
}

#[test]
fn answers_agree_between_flat_and_cached_and_across_masks() {
    let program = fghc::compile(FIB).unwrap();
    let mut flat_cluster = Cluster::new(
        program,
        ClusterConfig {
            pes: 2,
            ..Default::default()
        },
    );
    flat_cluster
        .set_query("main", vec![Term::Var("R".into())])
        .expect("query procedure exists");
    let flat_port = kl1_machine::run_flat(&mut flat_cluster, 50_000_000);
    let flat_answer = flat_cluster.extract(&flat_port, "R").unwrap();

    for mask in [OptMask::all(), OptMask::none()] {
        let (cluster, mut engine) = run_on_pim(FIB, 2, mask);
        assert_eq!(result_of(&cluster, &mut engine), flat_answer);
    }
}

#[test]
fn optimizations_reduce_bus_traffic() {
    let (_c1, engine_all) = run_on_pim(STREAM, 4, OptMask::all());
    let (_c2, engine_none) = run_on_pim(STREAM, 4, OptMask::none());
    let with_opt = engine_all.system().bus_stats().total_cycles();
    let without = engine_none.system().bus_stats().total_cycles();
    assert!(
        with_opt < without,
        "optimized {with_opt} should beat unoptimized {without}"
    );
}

#[test]
fn lock_operations_are_mostly_free_on_the_pim_cache() {
    let (_c, engine) = run_on_pim(STREAM, 4, OptMask::all());
    let ls = engine.system().lock_stats();
    assert!(ls.lr_total > 0);
    // Table 5's qualitative claim: the overwhelming majority of unlocks
    // find no waiter and cost no bus cycles.
    assert!(
        ls.unlock_no_waiter_ratio() > 0.9,
        "no-waiter ratio {}",
        ls.unlock_no_waiter_ratio()
    );
}

#[test]
fn same_answer_and_traffic_is_deterministic() {
    let (_c1, e1) = run_on_pim(STREAM, 4, OptMask::all());
    let (_c2, e2) = run_on_pim(STREAM, 4, OptMask::all());
    assert_eq!(
        e1.system().bus_stats().total_cycles(),
        e2.system().bus_stats().total_cycles(),
        "simulation must be bit-deterministic"
    );
    assert_eq!(e1.system().ref_stats(), e2.system().ref_stats());
}

#[test]
fn illinois_baseline_runs_the_same_program() {
    let program = fghc::compile(FIB).unwrap();
    let mut cluster = Cluster::new(
        program,
        ClusterConfig {
            pes: 4,
            ..Default::default()
        },
    );
    cluster
        .set_query("main", vec![Term::Var("R".into())])
        .expect("query procedure exists");
    let system = IllinoisSystem::new(SystemConfig {
        pes: 4,
        ..Default::default()
    });
    let mut engine = Engine::new(system, 4);
    let stats = engine
        .run(&mut cluster, 500_000_000)
        .expect("fault-free run");
    assert!(stats.finished);
    assert!(cluster.failure().is_none(), "{:?}", cluster.failure());
    let answer = engine.with_port(PeId(0), |port| cluster.extract(port, "R").unwrap());
    assert_eq!(answer, Term::Int(144));
}

#[test]
fn pim_touches_memory_less_than_illinois() {
    // The SM-state claim: with frequent cache-to-cache transfer, PIM
    // keeps shared-memory modules idler than a copyback-on-transfer
    // protocol.
    let program = fghc::compile(STREAM).unwrap();
    let mut c1 = Cluster::new(
        program.clone(),
        ClusterConfig {
            pes: 4,
            ..Default::default()
        },
    );
    c1.set_query("main", vec![Term::Var("R".into())])
        .expect("query procedure exists");
    let mut pim_engine = Engine::new(
        PimSystem::new(SystemConfig {
            pes: 4,
            ..Default::default()
        }),
        4,
    );
    assert!(
        pim_engine
            .run(&mut c1, 500_000_000)
            .expect("fault-free run")
            .finished
    );

    let mut c2 = Cluster::new(
        program,
        ClusterConfig {
            pes: 4,
            ..Default::default()
        },
    );
    c2.set_query("main", vec![Term::Var("R".into())])
        .expect("query procedure exists");
    let mut ill_engine = Engine::new(
        IllinoisSystem::new(SystemConfig {
            pes: 4,
            ..Default::default()
        }),
        4,
    );
    assert!(
        ill_engine
            .run(&mut c2, 500_000_000)
            .expect("fault-free run")
            .finished
    );

    let pim_busy = pim_engine.system().bus_stats().memory_busy_cycles();
    let ill_busy = ill_engine.system().bus_stats().memory_busy_cycles();
    assert!(
        pim_busy < ill_busy,
        "PIM memory busy {pim_busy} should be below Illinois {ill_busy}"
    );
}

#[test]
fn one_or_two_lock_entries_suffice_as_the_paper_claims() {
    // Paper Section 3.1: "We think only one or two lock entry per
    // directory is needed in most parallel logic programming
    // architectures." The KL1 machine locks one variable at a time
    // (binding, hooking), so the high-water mark must stay at 1.
    for src in [FIB, STREAM] {
        let (_c, engine) = {
            let program = fghc::compile(src).unwrap();
            let mut cluster = Cluster::new(
                program,
                ClusterConfig {
                    pes: 4,
                    ..Default::default()
                },
            );
            cluster
                .set_query("main", vec![Term::Var("R".into())])
                .expect("query procedure exists");
            let mut engine = Engine::new(
                PimSystem::new(SystemConfig {
                    pes: 4,
                    ..SystemConfig::default()
                }),
                4,
            );
            let stats = engine
                .run(&mut cluster, 500_000_000)
                .expect("fault-free run");
            assert!(stats.finished);
            (cluster, engine)
        };
        let max = engine.system().lock_stats().max_simultaneous_locks;
        assert!(
            (1..=2).contains(&max),
            "lock-directory high water {max} exceeds the paper's 1-2 sizing"
        );
    }
}

#[test]
fn checkpoint_round_trip_reproduces_the_run() {
    // Uninterrupted reference run.
    let (cluster_ref, mut engine_ref) = run_on_pim(FIB, 4, OptMask::all());
    let answer_ref = result_of(&cluster_ref, &mut engine_ref);
    let machine_ref = cluster_ref.stats();
    let fp_ref = format!(
        "{:?}|{:?}|{:?}|{:?}",
        engine_ref.system().ref_stats(),
        engine_ref.system().access_stats(),
        engine_ref.system().lock_stats(),
        engine_ref.system().bus_stats()
    );

    let build = || {
        let program = fghc::compile(FIB).expect("compiles");
        let mut cluster = Cluster::new(
            program,
            ClusterConfig {
                pes: 4,
                ..ClusterConfig::default()
            },
        );
        cluster
            .set_query("main", vec![Term::Var("R".into())])
            .expect("query procedure exists");
        let engine = Engine::new(
            PimSystem::new(SystemConfig {
                pes: 4,
                ..SystemConfig::default()
            }),
            4,
        );
        (cluster, engine)
    };

    for pause_at in [100u64, 5_000, 50_000] {
        // Run up to the pause, snapshot engine + machine.
        let (mut cluster, mut engine) = build();
        let paused = engine.run(&mut cluster, pause_at).expect("fault-free run");
        if paused.finished {
            // Budget outlived the program; nothing left to resume.
            continue;
        }
        let mut w = pim_ckpt::Writer::new();
        engine.save_ckpt(&mut w);
        cluster.save_ckpt(&mut w);
        let payload = w.payload().to_vec();

        // Restore into freshly built objects and finish.
        let (mut cluster2, mut engine2) = build();
        let mut r = pim_ckpt::Reader::new(&payload);
        engine2.restore_ckpt(&mut r).expect("engine restores");
        cluster2.restore_ckpt(&mut r).expect("cluster restores");
        r.expect_end().expect("no trailing bytes");
        let stats = engine2
            .run(&mut cluster2, 500_000_000)
            .expect("fault-free run");
        assert!(stats.finished, "pause_at={pause_at}");
        assert!(cluster2.failure().is_none(), "{:?}", cluster2.failure());

        assert_eq!(
            result_of(&cluster2, &mut engine2),
            answer_ref,
            "pause_at={pause_at}"
        );
        assert_eq!(cluster2.stats(), machine_ref, "pause_at={pause_at}");
        let fp = format!(
            "{:?}|{:?}|{:?}|{:?}",
            engine2.system().ref_stats(),
            engine2.system().access_stats(),
            engine2.system().lock_stats(),
            engine2.system().bus_stats()
        );
        assert_eq!(fp, fp_ref, "pause_at={pause_at}");
    }
}

#[test]
fn checkpoint_refuses_a_different_program() {
    let (mut cluster, mut engine) = run_on_pim(STREAM, 2, OptMask::all());
    let mut w = pim_ckpt::Writer::new();
    engine.save_ckpt(&mut w);
    cluster.save_ckpt(&mut w);
    let payload = w.payload().to_vec();
    let _ = (&mut cluster, &mut engine);

    let program = fghc::compile(FIB).expect("compiles");
    let mut other = Cluster::new(
        program,
        ClusterConfig {
            pes: 2,
            ..ClusterConfig::default()
        },
    );
    let mut engine2 = Engine::new(
        PimSystem::new(SystemConfig {
            pes: 2,
            ..SystemConfig::default()
        }),
        2,
    );
    let mut r = pim_ckpt::Reader::new(&payload);
    engine2
        .restore_ckpt(&mut r)
        .expect("engine state is program-agnostic");
    let err = other
        .restore_ckpt(&mut r)
        .expect_err("digest must catch the program swap");
    assert!(
        matches!(err, pim_ckpt::CkptError::Mismatch { .. }),
        "{err:?}"
    );
}

#[test]
fn makespan_improves_with_more_pes_for_parallel_work() {
    let (_c1, e1) = run_on_pim(FIB, 1, OptMask::all());
    let (_c8, e8) = run_on_pim(FIB, 8, OptMask::all());
    let t1 = {
        let clocks = e1.system(); // silence unused warnings via read
        let _ = clocks.bus_stats();
        e1.clock(PeId(0))
    };
    let t8 = (0..8).map(|i| e8.clock(PeId(i))).max().unwrap();
    assert!(
        t8 < t1,
        "8-PE makespan {t8} should beat 1-PE {t1} on a parallel benchmark"
    );
}
