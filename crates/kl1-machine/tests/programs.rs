//! Functional tests: FGHC programs run to completion and compute the
//! right answers, on a flat port (round-robin over PEs).

use fghc::Term;
use kl1_machine::{run_flat, Cluster, ClusterConfig};

fn run(src: &str, pes: u32, query: &str, args: Vec<Term>) -> (Cluster, kl1_machine::FlatPort) {
    let program = fghc::compile(src).expect("compiles");
    let mut cluster = Cluster::new(
        program,
        ClusterConfig {
            pes,
            ..ClusterConfig::default()
        },
    );
    cluster
        .set_query(query, args)
        .expect("query procedure exists");
    let port = run_flat(&mut cluster, 50_000_000);
    (cluster, port)
}

fn var(name: &str) -> Term {
    Term::Var(name.into())
}

#[test]
fn append_concatenates() {
    let src = "
        main(X) :- true | app([1,2,3], [4,5], X).
        app([], Y, Z)    :- true | Z = Y.
        app([H|T], Y, Z) :- true | Z = [H|W], app(T, Y, W).
    ";
    let (c, port) = run(src, 1, "main", vec![var("X")]);
    assert_eq!(c.extract(&port, "X").unwrap().to_string(), "[1,2,3,4,5]");
    assert!(c.stats().reductions >= 4);
}

#[test]
fn naive_reverse() {
    let src = "
        main(X) :- true | rev([1,2,3,4,5,6], X).
        rev([], Z)    :- true | Z = [].
        rev([H|T], Z) :- true | rev(T, R), app(R, [H], Z).
        app([], Y, Z)    :- true | Z = Y.
        app([H|T], Y, Z) :- true | Z = [H|W], app(T, Y, W).
    ";
    let (c, port) = run(src, 1, "main", vec![var("X")]);
    assert_eq!(c.extract(&port, "X").unwrap().to_string(), "[6,5,4,3,2,1]");
}

#[test]
fn fibonacci_with_guards_and_arithmetic() {
    let src = "
        main(F) :- true | fib(15, F).
        fib(N, F) :- N < 2 | F = N.
        fib(N, F) :- N >= 2 |
            N1 := N - 1, N2 := N - 2,
            fib(N1, F1), fib(N2, F2), add(F1, F2, F).
        add(A, B, C) :- integer(A), integer(B) | C := A + B.
    ";
    let (c, port) = run(src, 1, "main", vec![var("F")]);
    assert_eq!(c.extract(&port, "F").unwrap(), Term::Int(610));
    // add/3 suspends until both fib results arrive.
    assert!(c.stats().suspensions > 0, "expected suspensions");
}

#[test]
fn fibonacci_parallel_matches_sequential() {
    let src = "
        main(F) :- true | fib(14, F).
        fib(N, F) :- N < 2 | F = N.
        fib(N, F) :- N >= 2 |
            N1 := N - 1, N2 := N - 2,
            fib(N1, F1), fib(N2, F2), add(F1, F2, F).
        add(A, B, C) :- integer(A), integer(B) | C := A + B.
    ";
    for pes in [2, 4, 8] {
        let (c, port) = run(src, pes, "main", vec![var("F")]);
        assert_eq!(
            c.extract(&port, "F").unwrap(),
            Term::Int(377),
            "wrong answer on {pes} PEs"
        );
        assert!(
            c.stats().goals_migrated > 0,
            "no load balancing on {pes} PEs"
        );
    }
}

#[test]
fn stream_producer_consumer_suspends_and_resumes() {
    // The canonical FGHC stream pattern of paper Section 2.1: the consumer
    // chases the producer down an incomplete list.
    let src = "
        main(S) :- true | gen(20, L), sum(L, 0, S).
        gen(0, L) :- true | L = [].
        gen(N, L) :- N > 0 | L = [N|T], N1 := N - 1, gen(N1, T).
        sum([], A, S) :- true | S = A.
        sum([H|T], A, S) :- true | A1 := A + H, sum(T, A1, S).
    ";
    let (c, port) = run(src, 2, "main", vec![var("S")]);
    assert_eq!(c.extract(&port, "S").unwrap(), Term::Int(210));
}

#[test]
fn bounded_buffer_pipeline_three_stages() {
    let src = "
        main(Out) :- true | nats(10, N), doubles(N, D), sum(D, 0, Out).
        nats(0, L) :- true | L = [].
        nats(K, L) :- K > 0 | L = [K|T], K1 := K - 1, nats(K1, T).
        doubles([], D) :- true | D = [].
        doubles([H|T], D) :- true | H2 := H * 2, D = [H2|DT], doubles(T, DT).
        sum([], A, S) :- true | S = A.
        sum([H|T], A, S) :- true | A1 := A + H, sum(T, A1, S).
    ";
    let (c, port) = run(src, 4, "main", vec![var("Out")]);
    assert_eq!(c.extract(&port, "Out").unwrap(), Term::Int(110));
}

#[test]
fn otherwise_commits_only_after_failures() {
    let src = "
        main(R) :- true | classify(7, R).
        classify(0, R) :- true | R = zero.
        classify(N, R) :- N < 0 | R = negative.
        classify(_, R) :- otherwise | R = positive.
    ";
    let (c, port) = run(src, 1, "main", vec![var("R")]);
    assert_eq!(
        c.extract(&port, "R").unwrap(),
        Term::Atom("positive".into())
    );
}

#[test]
fn structures_unify_across_goals() {
    let src = "
        main(R) :- true | mk(P), use(P, R).
        mk(P) :- true | P = point(3, 4).
        use(Q, R) :- true | get(Q, R).
        get(point(X, Y), R) :- true | R := X * X + Y * Y.
    ";
    let (c, port) = run(src, 2, "main", vec![var("R")]);
    assert_eq!(c.extract(&port, "R").unwrap(), Term::Int(25));
}

#[test]
fn ground_query_arguments_flow_in() {
    let src = "
        main(L, X) :- true | app(L, [9], X).
        app([], Y, Z)    :- true | Z = Y.
        app([H|T], Y, Z) :- true | Z = [H|W], app(T, Y, W).
    ";
    let (c, port) = run(
        src,
        1,
        "main",
        vec![Term::list(vec![Term::Int(7), Term::Int(8)], None), var("X")],
    );
    assert_eq!(c.extract(&port, "X").unwrap().to_string(), "[7,8,9]");
}

#[test]
fn deep_recursion_with_tail_calls_stays_flat() {
    let src = "
        main(X) :- true | count(100000, X).
        count(0, X) :- true | X = done.
        count(N, X) :- N > 0 | N1 := N - 1, count(N1, X).
    ";
    let (c, port) = run(src, 1, "main", vec![var("X")]);
    assert_eq!(c.extract(&port, "X").unwrap(), Term::Atom("done".into()));
    assert!(c.stats().reductions >= 100_000);
}

#[test]
fn failing_program_reports_failure() {
    let src = "
        main(X) :- true | eq(1, 2, X).
        eq(A, A2, X) :- A =:= A2 | X = yes.
    ";
    let program = fghc::compile(src).unwrap();
    let mut cluster = Cluster::new(
        program,
        ClusterConfig {
            pes: 1,
            ..Default::default()
        },
    );
    cluster
        .set_query("main", vec![var("X")])
        .expect("query procedure exists");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_flat(&mut cluster, 1_000_000)
    }));
    assert!(result.is_err(), "program failure must surface");
}

#[test]
fn division_by_zero_is_a_program_failure() {
    let src = "main(X) :- true | X := 1 / 0.";
    let program = fghc::compile(src).unwrap();
    let mut cluster = Cluster::new(
        program,
        ClusterConfig {
            pes: 1,
            ..Default::default()
        },
    );
    cluster
        .set_query("main", vec![var("X")])
        .expect("query procedure exists");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_flat(&mut cluster, 1_000_000)
    }));
    assert!(result.is_err(), "division by zero must fail the program");
}

#[test]
fn arithmetic_overflow_is_a_program_failure() {
    let src = "
        main(X) :- true | blow(1, X).
        blow(N, X) :- N > 0 | N1 := N * 16384, blow(N1, X).
    ";
    let program = fghc::compile(src).unwrap();
    let mut cluster = Cluster::new(
        program,
        ClusterConfig {
            pes: 1,
            ..Default::default()
        },
    );
    cluster
        .set_query("main", vec![var("X")])
        .expect("query procedure exists");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_flat(&mut cluster, 10_000_000)
    }));
    assert!(
        result.is_err(),
        "56-bit overflow must fail, not wrap silently"
    );
}

#[test]
fn body_unification_mismatch_fails_the_program() {
    let src = "main(X) :- true | X = a, X = b.";
    let program = fghc::compile(src).unwrap();
    let mut cluster = Cluster::new(
        program,
        ClusterConfig {
            pes: 1,
            ..Default::default()
        },
    );
    cluster
        .set_query("main", vec![var("X")])
        .expect("query procedure exists");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_flat(&mut cluster, 1_000_000)
    }));
    assert!(result.is_err(), "a = b must fail in committed-choice code");
}

#[test]
fn deep_structures_unify_without_stack_issues() {
    // Build and compare two deep, identical nested structures.
    let src = "
        main(X) :- true | mk(400, A), mk(400, B), eq(A, B, X).
        mk(0, T) :- true | T = leaf.
        mk(N, T) :- N > 0 | N1 := N - 1, mk(N1, S), T = node(S).
        eq(A, B, X) :- true | A = B, X = same.
    ";
    let (c, port) = run(src, 1, "main", vec![var("X")]);
    assert_eq!(c.extract(&port, "X").unwrap(), Term::Atom("same".into()));
}

#[test]
fn perpetual_suspension_is_detected() {
    let src = "
        main(X) :- true | wait(Y, X).
        wait(Y, X) :- integer(Y) | X = Y.
    ";
    let program = fghc::compile(src).unwrap();
    let mut cluster = Cluster::new(
        program,
        ClusterConfig {
            pes: 2,
            ..Default::default()
        },
    );
    cluster
        .set_query("main", vec![var("X")])
        .expect("query procedure exists");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_flat(&mut cluster, 1_000_000)
    }));
    assert!(result.is_err(), "perpetual suspension must surface");
}

#[test]
fn reference_stats_cover_all_areas() {
    use pim_trace::StorageArea;
    let src = "
        main(S) :- true | gen(30, L), sum(L, 0, S).
        gen(0, L) :- true | L = [].
        gen(N, L) :- N > 0 | L = [N|T], N1 := N - 1, gen(N1, T).
        sum([], A, S) :- true | S = A.
        sum([H|T], A, S) :- true | A1 := A + H, sum(T, A1, S).
    ";
    let (_c, port) = run(src, 2, "main", vec![var("S")]);
    let stats = port.stats();
    assert!(stats.area_total(StorageArea::Instruction) > 0, "inst refs");
    assert!(stats.area_total(StorageArea::Heap) > 0, "heap refs");
    assert!(stats.area_total(StorageArea::Goal) > 0, "goal refs");
    // The stream consumer suspends at least once in a 2-PE interleave.
    // (Suspension refs can be zero if scheduling aligns, so only check
    // that the total splits across instruction + data sensibly.)
    assert!(stats.data_total() > 0);
    assert!(stats.total() > stats.data_total());
}

#[test]
fn goal_records_are_written_once_and_read_once() {
    use pim_trace::{MemOp, StorageArea};
    let src = "
        main :- true | a, b, c.
        a :- true | true.
        b :- true | true.
        c :- true | true.
    ";
    let (_c, port) = run(src, 1, "main", vec![]);
    let s = port.stats();
    let goal_writes =
        s.count(StorageArea::Goal, MemOp::DirectWrite) + s.count(StorageArea::Goal, MemOp::Write);
    let goal_reads = s.count(StorageArea::Goal, MemOp::ExclusiveRead)
        + s.count(StorageArea::Goal, MemOp::ReadPurge)
        + s.count(StorageArea::Goal, MemOp::Read);
    assert_eq!(goal_writes, goal_reads, "write-once read-once");
    assert!(goal_writes > 0);
}
