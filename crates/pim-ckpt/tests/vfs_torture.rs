//! Torture suite for the host-I/O fault-injection shim: fuzzed fault
//! schedules over save/append/replay cycles must never violate the
//! three durability invariants the ISSUE pins:
//!
//! 1. no torn file ever parses — a destination path only ever holds a
//!    complete old file or a complete new file;
//! 2. no acknowledged record is ever lost — whatever `write_atomic`
//!    returned `Ok` for is what a later read recovers;
//! 3. recovery converges — under any seed, rate, and kind subset, the
//!    bounded-retry discipline lands the byte-identical undisturbed
//!    result (the final permitted attempt is fault-free by
//!    construction).
//!
//! The sweep-journal side of the same invariants (fsync-acknowledged
//! appends surviving chaos) lives in pim-sweep's own suites, which
//! stack this shim under the real `pim-swl/v1` writer.

use proptest::prelude::*;

use pim_ckpt::vfs::{
    self, decide, IoChaosConfig, IoDir, IoFaultKind, PathClass, ScopedIoChaos, PPM,
};
use pim_ckpt::{load_from_path, save_to_path, Writer};

/// A unique scratch directory per test case, removed on success.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pim-vfs-torture-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a plan from fuzzed raw parts: any seed, any rate up to the
/// full million, any non-empty subset of kinds, a small retry budget.
/// Backoff is zeroed so thousands of injected faults cost no wall time.
fn plan(seed: u64, rate_ppm: u64, kind_mask: u8, retries: u32) -> IoChaosConfig {
    let kinds: Vec<IoFaultKind> = IoFaultKind::ALL
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| kind_mask & (1 << i) != 0)
        .map(|(_, k)| k)
        .collect();
    IoChaosConfig {
        seed,
        rate_ppm,
        kinds: if kinds.is_empty() {
            IoFaultKind::ALL.to_vec()
        } else {
            kinds
        },
        max_retries: retries,
        backoff_ms: 0,
        kill: None,
    }
}

fn ckpt_bytes(payload: &[u8]) -> Writer {
    let mut w = Writer::new();
    w.section("torture", |w| w.put_bytes(payload));
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invariant 3 (convergence) + 1 (no torn file parses): under any
    /// fault schedule, every acknowledged `save_to_path` round-trips
    /// byte-identically through `load_from_path`, and the directory
    /// holds no stranded temp siblings afterwards.
    #[test]
    fn checkpoint_cycles_converge_under_any_schedule(
        seed in any::<u64>(),
        rate in 0u64..PPM + 1,
        kind_mask in any::<u8>(),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..8),
    ) {
        let dir = scratch("ckpt");
        let path = dir.join("state.ck");
        {
            let _chaos = ScopedIoChaos::install(plan(seed, rate, kind_mask, 4));
            for payload in &payloads {
                save_to_path(&path, ckpt_bytes(payload)).unwrap();
                // The acknowledged write is immediately recoverable —
                // through the shim (torn reads retried) ...
                let got = load_from_path(&path).unwrap();
                prop_assert!(got.ends_with(payload.as_slice()));
            }
        }
        // ... and on the bare filesystem once chaos is gone: the final
        // durable file is a complete, parseable checkpoint.
        let got = load_from_path(&path).unwrap();
        prop_assert!(got.ends_with(payloads.last().unwrap().as_slice()));
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n != "state.ck")
            .collect();
        prop_assert!(stray.is_empty(), "stranded temp files: {stray:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Invariant 2 for the raw write/read primitives across classes:
    /// whatever `write_atomic` acknowledged is exactly what `read_file`
    /// returns, for every class and any schedule.
    #[test]
    fn raw_write_read_round_trips_on_every_class(
        seed in any::<u64>(),
        rate in 0u64..PPM + 1,
        kind_mask in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let dir = scratch("raw");
        let _chaos = ScopedIoChaos::install(plan(seed, rate, kind_mask, 4));
        for class in PathClass::ALL {
            let path = dir.join(format!("{}.bin", class.label()));
            vfs::write_atomic(class, &path, &payload).unwrap();
            prop_assert_eq!(vfs::read_file(class, &path).unwrap(), payload.clone());
        }
        drop(_chaos);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The decision function is pure and bounded: identical inputs give
    /// identical answers, and no attempt at or past the retry budget
    /// ever faults — which is the whole convergence proof.
    #[test]
    fn decide_is_pure_and_bounded(
        seed in any::<u64>(),
        rate in 0u64..PPM + 1,
        kind_mask in any::<u8>(),
        retries in 0u32..6,
        op in any::<u64>(),
        class_ix in 0usize..7,
        attempt in 0u32..12,
    ) {
        let cfg = plan(seed, rate, kind_mask, retries);
        let class = PathClass::ALL[class_ix];
        for dir in [IoDir::Read, IoDir::Write] {
            let a = decide(&cfg, op, class, dir, attempt);
            prop_assert_eq!(a, decide(&cfg, op, class, dir, attempt));
            if attempt >= retries {
                prop_assert_eq!(a, None);
            }
            if let Some(kind) = a {
                prop_assert!(cfg.kinds.contains(&kind));
                // Kind eligibility: write faults never strike reads and
                // torn reads never strike writes.
                match dir {
                    IoDir::Read => prop_assert!(
                        matches!(kind, IoFaultKind::Eio | IoFaultKind::TornRead)),
                    IoDir::Write => prop_assert!(kind != IoFaultKind::TornRead),
                }
            }
        }
    }
}

/// Invariant 1 under a *dead* disk: when every attempt on a class
/// faults, the write fails loud — and the destination still holds the
/// previous complete file, not a torn hybrid.
#[test]
fn dead_disk_fails_loud_and_preserves_the_old_file() {
    let dir = scratch("dead");
    let path = dir.join("state.ck");
    save_to_path(&path, ckpt_bytes(b"survivor")).unwrap();
    {
        let mut cfg = plan(99, 0, 0xF, 4);
        cfg.kill = Some((PathClass::Checkpoint, 0));
        let _chaos = ScopedIoChaos::install(cfg);
        let err = save_to_path(&path, ckpt_bytes(b"doomed")).unwrap_err();
        assert!(err.to_string().contains("io-chaos"), "{err}");
        // Reads on the killed class fail too (the disk is gone) ...
        assert!(vfs::read_file(PathClass::Checkpoint, &path).is_err());
        // ... but other classes still work.
        assert!(vfs::read_file(PathClass::Report, &path).is_ok());
    }
    let got = load_from_path(&path).unwrap();
    assert!(got.ends_with(b"survivor"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Telemetry-style degraded writes under a dead disk never panic and
/// never corrupt the destination; stats account the exhaustion.
#[test]
fn exhausted_ops_are_counted() {
    let dir = scratch("stats");
    let mut cfg = plan(7, 0, 0xF, 2);
    cfg.kill = Some((PathClass::Telemetry, 0));
    let _chaos = ScopedIoChaos::install(cfg);
    for i in 0..3 {
        let path = dir.join(format!("t{i}.json"));
        assert!(vfs::write_atomic(PathClass::Telemetry, &path, b"{}").is_err());
        assert!(!path.exists());
    }
    let stats = vfs::stats().unwrap();
    assert_eq!(stats.exhausted, 3);
    assert_eq!(stats.ops, 3);
    assert!(stats.total_injected() >= 3 * 3); // every attempt faulted
    drop(_chaos);
    std::fs::remove_dir_all(&dir).ok();
}
