//! Versioned, checksummed checkpoint format and crash-safe persistence
//! for the PIM cache simulator.
//!
//! This crate sits at the bottom of the workspace dependency graph: every
//! state-holding crate (`pim-bus`, `pim-cache`, `pim-obs`, `pim-tracer`,
//! `pim-sim`, `kl1-machine`) implements explicit serialize hooks against
//! the [`Writer`]/[`Reader`] primitives defined here, and the simulator
//! binaries frame those sections into a `pim-ckpt/v1` file:
//!
//! ```text
//! file    := magic payload_len:u64le payload checksum:u64le
//! magic   := "pim-ckpt/v1\n"                     (12 bytes)
//! payload := section*
//! section := name_len:u32le name payload_len:u64le payload
//! ```
//!
//! All integers are little-endian. The checksum is FNV-1a/64 over the
//! payload bytes. A reader verifies, in order: magic (naming a version
//! mismatch when the file is a `pim-ckpt` of another version), declared
//! length against the file size (catching truncation), and checksum
//! (catching bit corruption) — every failure is a structured
//! [`CkptError`] with a named diagnostic, never a panic.
//!
//! The crate also owns the crash-safety primitives shared by every
//! output path in the workspace: [`atomic_write`] (temp file + fsync +
//! rename, so a crash never leaves a partial file where a valid one is
//! expected), [`validate_destination`] (up-front writability probe that
//! leaves *no* zero-byte file behind), and the SIGINT drain flag used by
//! the binaries to cut a final checkpoint on Ctrl-C.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

pub mod vfs;

/// The 12-byte file magic, including the format version.
pub const MAGIC: &[u8; 12] = b"pim-ckpt/v1\n";

/// Why a checkpoint could not be written or restored.
///
/// Every variant renders as a named diagnostic (the ISSUE's contract:
/// corrupt, truncated, or version-mismatched checkpoints are *refused*
/// with a message naming the failure class, never a panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// An operating-system I/O failure (reading or writing the file).
    Io(String),
    /// The file does not start with the `pim-ckpt` magic at all.
    BadMagic,
    /// The file is a `pim-ckpt` of a different format version.
    VersionMismatch {
        /// The version token found in the file.
        found: String,
    },
    /// The file is shorter than its header declares.
    Truncated {
        /// What exactly was cut short.
        detail: String,
    },
    /// The payload checksum does not match the stored one.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// The payload decoded to something structurally impossible
    /// (bad section name, bad enum tag, over- or under-read section).
    Corrupt {
        /// What exactly failed to decode.
        detail: String,
    },
    /// The checkpoint is internally valid but belongs to a different
    /// run configuration (PE count, workload, protocol, …).
    Mismatch {
        /// Which configuration field disagreed.
        detail: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(detail) => write!(f, "i/o error: {detail}"),
            CkptError::BadMagic => write!(f, "bad magic: not a pim-ckpt file"),
            CkptError::VersionMismatch { found } => write!(
                f,
                "version mismatch: file is `{found}`, this build reads `pim-ckpt/v1`"
            ),
            CkptError::Truncated { detail } => write!(f, "truncated checkpoint: {detail}"),
            CkptError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CkptError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
            CkptError::Mismatch { detail } => write!(f, "configuration mismatch: {detail}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// FNV-1a 64-bit over `bytes` — the payload checksum. Chosen for being
/// dependency-free, endian-stable, and strong enough to catch the
/// bit-flip and truncation corruption this format defends against
/// (it is an integrity check, not an authentication code).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializer for checkpoint payloads: an append-only byte buffer with
/// little-endian primitives and named, length-prefixed sections.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty payload.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends an `Option<u64>` as presence byte + value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a slice of `u64`s with a length prefix.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_len(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Writes a named, length-prefixed section whose body is produced by
    /// `f`. Sections nest; the length is patched in after `f` returns, so
    /// a reader can verify it consumed exactly the section's bytes.
    pub fn section<F: FnOnce(&mut Writer)>(&mut self, name: &str, f: F) {
        // Section names use a u32 prefix so they cannot be confused with
        // ordinary length-prefixed strings when scanning a hexdump.
        self.put_u32(name.len() as u32);
        self.buf.extend_from_slice(name.as_bytes());
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 8]);
        f(self);
        let len = (self.buf.len() - at - 8) as u64;
        self.buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
    }

    /// The raw payload accumulated so far.
    pub fn payload(&self) -> &[u8] {
        &self.buf
    }

    /// Frames the payload into a complete `pim-ckpt/v1` file image:
    /// magic, payload length, payload, FNV-1a/64 checksum.
    pub fn into_file_bytes(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + MAGIC.len() + 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        let sum = fnv1a64(&self.buf);
        out.extend_from_slice(&self.buf);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }
}

/// Deserializer over a verified checkpoint payload. Every read is
/// bounds-checked and returns a structured [`CkptError`] on failure —
/// a corrupted payload can never panic the reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over an already-verified payload (see [`read_file_bytes`]).
    pub fn new(payload: &'a [u8]) -> Reader<'a> {
        Reader {
            buf: payload,
            pos: 0,
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CkptError> {
        if self.buf.len() - self.pos < n {
            return Err(CkptError::Corrupt {
                detail: format!(
                    "unexpected end of payload reading {what} at offset {}",
                    self.pos
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4, "u32")?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8, "u64")?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CkptError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a `bool`; any byte other than 0 or 1 is corruption.
    pub fn get_bool(&mut self) -> Result<bool, CkptError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::Corrupt {
                detail: format!("bad bool byte {other:#x}"),
            }),
        }
    }

    /// Reads a `u64` length and checks it fits in the remaining bytes
    /// (so corrupt lengths fail cleanly instead of driving a huge
    /// allocation).
    pub fn get_len(&mut self) -> Result<usize, CkptError> {
        let n = self.get_u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return Err(CkptError::Corrupt {
                detail: format!("length {n} exceeds {remaining} remaining bytes"),
            });
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.get_len()?;
        self.take(n, "bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CkptError> {
        let b = self.get_bytes()?;
        std::str::from_utf8(b).map_err(|_| CkptError::Corrupt {
            detail: "string is not UTF-8".into(),
        })
    }

    /// Reads an `Option<u64>` written by [`Writer::put_opt_u64`].
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, CkptError> {
        if self.get_bool()? {
            Ok(Some(self.get_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed `Vec<u64>`.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, CkptError> {
        let n = self.get_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Enters the named section, runs `f` over its body, and verifies
    /// `f` consumed the section exactly — over- and under-reads are
    /// both corruption.
    pub fn section<T, F>(&mut self, name: &str, f: F) -> Result<T, CkptError>
    where
        F: FnOnce(&mut Reader<'a>) -> Result<T, CkptError>,
    {
        let n = self.get_u32()? as usize;
        if self.buf.len() - self.pos < n {
            return Err(CkptError::Corrupt {
                detail: format!("section name of {n} bytes overruns payload"),
            });
        }
        let found = std::str::from_utf8(&self.buf[self.pos..self.pos + n]).map_err(|_| {
            CkptError::Corrupt {
                detail: "section name is not UTF-8".into(),
            }
        })?;
        if found != name {
            return Err(CkptError::Corrupt {
                detail: format!("expected section `{name}`, found `{found}`"),
            });
        }
        self.pos += n;
        let len = self.get_len()?;
        let end = self.pos + len;
        let mut inner = Reader {
            buf: &self.buf[..end],
            pos: self.pos,
        };
        let v = f(&mut inner)?;
        if inner.pos != end {
            return Err(CkptError::Corrupt {
                detail: format!("section `{name}` has {} unread bytes", end - inner.pos),
            });
        }
        self.pos = end;
        Ok(v)
    }

    /// Verifies the whole payload was consumed.
    pub fn expect_end(&self) -> Result<(), CkptError> {
        if self.pos != self.buf.len() {
            return Err(CkptError::Corrupt {
                detail: format!(
                    "{} trailing bytes after last section",
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

/// Verifies a complete file image (magic, declared length, checksum) and
/// returns the payload slice. This is the only entry point for restoring
/// — a file that fails any check is refused before a single field is
/// decoded.
pub fn read_file_bytes(bytes: &[u8]) -> Result<&[u8], CkptError> {
    if bytes.len() < MAGIC.len() {
        if bytes.is_empty() || !MAGIC.starts_with(&bytes[..bytes.len().min(9)]) {
            return Err(CkptError::BadMagic);
        }
        return Err(CkptError::Truncated {
            detail: format!("{} bytes is shorter than the magic itself", bytes.len()),
        });
    }
    let magic = &bytes[..MAGIC.len()];
    if magic != MAGIC {
        if magic.starts_with(b"pim-ckpt/") {
            let rest = &bytes[..bytes.len().min(32)];
            let end = rest
                .iter()
                .position(|&b| b == b'\n')
                .unwrap_or(MAGIC.len().min(rest.len()));
            return Err(CkptError::VersionMismatch {
                found: String::from_utf8_lossy(&rest[..end]).into_owned(),
            });
        }
        return Err(CkptError::BadMagic);
    }
    let rest = &bytes[MAGIC.len()..];
    if rest.len() < 8 {
        return Err(CkptError::Truncated {
            detail: "header cut off before the payload length".into(),
        });
    }
    let mut a = [0u8; 8];
    a.copy_from_slice(&rest[..8]);
    let len = u64::from_le_bytes(a) as usize;
    let body = &rest[8..];
    if body.len() < len + 8 {
        return Err(CkptError::Truncated {
            detail: format!(
                "header declares {len} payload bytes + 8 checksum bytes, file has {}",
                body.len()
            ),
        });
    }
    if body.len() > len + 8 {
        return Err(CkptError::Corrupt {
            detail: format!("{} trailing bytes after the checksum", body.len() - len - 8),
        });
    }
    let payload = &body[..len];
    a.copy_from_slice(&body[len..len + 8]);
    let stored = u64::from_le_bytes(a);
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(CkptError::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Writes `writer`'s payload to `path` as a framed `pim-ckpt/v1` file,
/// atomically (see [`atomic_write`]).
pub fn save_to_path(path: &Path, writer: Writer) -> Result<(), CkptError> {
    vfs::write_atomic(vfs::PathClass::Checkpoint, path, &writer.into_file_bytes())
        .map_err(|e| CkptError::Io(format!("cannot write {}: {e}", path.display())))
}

/// Reads and verifies the file at `path`, returning the owned payload.
pub fn load_from_path(path: &Path) -> Result<Vec<u8>, CkptError> {
    let bytes = vfs::read_file(vfs::PathClass::Checkpoint, path)
        .map_err(|e| CkptError::Io(format!("cannot read {}: {e}", path.display())))?;
    Ok(read_file_bytes(&bytes)?.to_vec())
}

pub(crate) fn temp_sibling(path: &Path, tag: &str) -> (PathBuf, PathBuf) {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    let tmp = dir.join(format!(".{name}.{tag}.{}", std::process::id()));
    (dir, tmp)
}

/// Durably replaces `path` with `bytes`: write to a temp file in the
/// same directory, fsync it, then rename over the destination (and
/// fsync the directory, warning once on stderr if that fails). Readers
/// of `path` see either the old complete file or the new complete file,
/// never a partial one; a failed write never strands its temp file.
///
/// Routed through [`vfs`] with [`vfs::PathClass::Other`]; callers that
/// know their path class should prefer [`atomic_write_class`] so
/// `--io-chaos` can target and account the path correctly.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    vfs::write_atomic(vfs::PathClass::Other, path, bytes)
}

/// [`atomic_write`] with an explicit [`vfs::PathClass`], so the fault
/// plan keys and the recovery policy table see the path for what it is.
pub fn atomic_write_class(class: vfs::PathClass, path: &Path, bytes: &[u8]) -> io::Result<()> {
    vfs::write_atomic(class, path, bytes)
}

/// Probes that `path` will be writable later, *without* leaving a file
/// behind: an existing file is opened for append (not truncated); a
/// missing one is probed by creating and removing an invisible sibling
/// temp file in the same directory. This replaces the up-front
/// `File::create` pattern that left zero-byte files when a run failed
/// before producing output.
pub fn validate_destination(path: &Path) -> io::Result<()> {
    match std::fs::metadata(path) {
        Ok(_) => std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map(|_| ()),
        Err(_) => {
            let (_, probe) = temp_sibling(path, "probe");
            std::fs::File::create(&probe)?;
            let _ = std::fs::remove_file(&probe);
            Ok(())
        }
    }
}

pub mod spec {
    //! The one parser behind every `FILE[:key=value...]` flag in the
    //! workspace (`--checkpoint FILE[:every=N]`, `--trace FILE[:cap=N]`,
    //! `--sweep FILE`, `--journal FILE`) and every bare `key=value,...`
    //! flag (`--faults`, `--chaos`). Each flag used to hand-roll its own
    //! splitting with its own diagnostics; this module makes every flag
    //! emit the same named-flag messages, so a bad spec always exits 2
    //! with the flag and the offending key/value spelled out.

    /// A parsed `FILE[:key=value...]` flag value: the path plus the
    /// trailing options in source order.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct FileSpec {
        /// Everything before the first recognized `:key=value` suffix.
        pub path: String,
        /// The recognized trailing options, in the order written.
        pub opts: Vec<(String, String)>,
    }

    impl FileSpec {
        /// The last value given for `key`, if any.
        pub fn get(&self, key: &str) -> Option<&str> {
            self.opts
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        }

        /// Parses `key`'s value as a `u64`, with the flag and key named
        /// in the diagnostic.
        pub fn get_u64(&self, flag: &str, key: &str) -> Result<Option<u64>, String> {
            match self.get(key) {
                None => Ok(None),
                Some(v) => v
                    .parse()
                    .map(Some)
                    .map_err(|_| format!("bad value `{v}` for `{key}` in --{flag}")),
            }
        }
    }

    /// True when `seg` has the shape of an option (`identifier=value`)
    /// rather than a path fragment — used to flag typos like
    /// `out.ck:evry=5` instead of silently treating them as the path.
    fn looks_like_option(seg: &str) -> bool {
        match seg.split_once('=') {
            None => false,
            Some((key, _)) => {
                !key.is_empty()
                    && key
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            }
        }
    }

    /// Parses `FILE[:key=value...]` where each trailing `:key=value`
    /// segment's key is one of `keys`. Unrecognized option-shaped
    /// suffixes are an error (naming the flag, the key, and the accepted
    /// keys); colons that are plainly part of the path (`C:/out.json`)
    /// pass through untouched.
    pub fn parse_file_spec(flag: &str, spec: &str, keys: &[&str]) -> Result<FileSpec, String> {
        let mut rest = spec;
        let mut opts: Vec<(String, String)> = Vec::new();
        while let Some((head, seg)) = rest.rsplit_once(':') {
            let Some((key, value)) = seg.split_once('=') else {
                break;
            };
            if keys.contains(&key) {
                if value.is_empty() {
                    return Err(format!("empty value for `{key}` in --{flag}"));
                }
                opts.push((key.to_string(), value.to_string()));
                rest = head;
            } else if looks_like_option(seg) {
                return Err(format!(
                    "unknown key `{key}` in --{flag} (accepted: {})",
                    keys.join(", ")
                ));
            } else {
                break;
            }
        }
        if rest.is_empty() {
            return Err(format!("empty path in --{flag}"));
        }
        opts.reverse();
        Ok(FileSpec {
            path: rest.to_string(),
            opts,
        })
    }

    /// Splits a bare `key=value[,key=value...]` spec (no file path) into
    /// pairs, with the flag named in every diagnostic. Empty segments
    /// (trailing commas) are ignored.
    pub fn parse_kv_spec(flag: &str, spec: &str) -> Result<Vec<(String, String)>, String> {
        let mut out = Vec::new();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!("field `{part}` in --{flag} is not key=value"));
            };
            out.push((key.to_string(), value.to_string()));
        }
        Ok(out)
    }
}

/// Parses the `--checkpoint FILE[:every=N]` argument form shared by the
/// simulator binaries: an optional trailing `:every=N` sets the snapshot
/// interval in engine steps, everything before it is the file path.
/// A thin wrapper over [`spec::parse_file_spec`].
pub fn parse_checkpoint_spec(spec_str: &str) -> Result<(String, Option<u64>), String> {
    let parsed = spec::parse_file_spec("checkpoint", spec_str, &["every"])?;
    let every = parsed.get_u64("checkpoint", "every")?;
    if every == Some(0) {
        return Err("snapshot interval in --checkpoint must be >= 1".into());
    }
    Ok((parsed.path, every))
}

/// Interns `s`, returning a `&'static str` with the same contents.
/// Used when restoring checkpoint fields whose in-memory type is
/// `&'static str` (fault-kind labels in the metrics map and the tracer
/// ring). The table is global and deduplicating, so repeated restores
/// leak each distinct label at most once.
pub fn intern(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut guard = match table.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&have) = guard.get(s) {
        return have;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(leaked);
    leaked
}

#[allow(unsafe_code)]
mod sig {
    //! SIGINT-to-flag plumbing: the only thing the handler does is store
    //! into a static `AtomicBool` (async-signal-safe), which the
    //! binaries' chunked run loops poll between chunks to drain a final
    //! checkpoint before exiting.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Once;

    static FLAG: AtomicBool = AtomicBool::new(false);
    static ONCE: Once = Once::new();

    #[cfg(unix)]
    extern "C" fn on_sigint(_signum: i32) {
        FLAG.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    pub fn install() -> &'static AtomicBool {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        ONCE.call_once(|| {
            // SAFETY: `signal` is the POSIX libc entry point (libc is
            // already linked by std); the handler only performs an
            // atomic store, which is async-signal-safe.
            unsafe {
                signal(SIGINT, on_sigint);
            }
        });
        &FLAG
    }

    #[cfg(not(unix))]
    pub fn install() -> &'static AtomicBool {
        ONCE.call_once(|| {});
        &FLAG
    }
}

/// Installs (once) a SIGINT handler that sets a flag instead of killing
/// the process, and returns that flag. Binaries poll it between run
/// chunks: when set, they write a final checkpoint and exit. On
/// non-Unix targets this returns a flag that is simply never set.
pub fn install_sigint_flag() -> &'static std::sync::atomic::AtomicBool {
    sig::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Writer {
        let mut w = Writer::new();
        w.section("meta", |w| {
            w.put_str("tracesim");
            w.put_u64(42);
        });
        w.section("body", |w| {
            w.put_u64s(&[1, 2, 3]);
            w.put_opt_u64(None);
            w.put_opt_u64(Some(7));
            w.put_bool(true);
            w.put_i64(-5);
            w.section("nested", |w| w.put_u8(9));
        });
        w
    }

    fn read_sample(payload: &[u8]) -> Result<(), CkptError> {
        let mut r = Reader::new(payload);
        r.section("meta", |r| {
            assert_eq!(r.get_str()?, "tracesim");
            assert_eq!(r.get_u64()?, 42);
            Ok(())
        })?;
        r.section("body", |r| {
            assert_eq!(r.get_u64s()?, vec![1, 2, 3]);
            assert_eq!(r.get_opt_u64()?, None);
            assert_eq!(r.get_opt_u64()?, Some(7));
            assert!(r.get_bool()?);
            assert_eq!(r.get_i64()?, -5);
            r.section("nested", |r| {
                assert_eq!(r.get_u8()?, 9);
                Ok(())
            })
        })?;
        r.expect_end()
    }

    #[test]
    fn round_trip() {
        let bytes = sample().into_file_bytes();
        let payload = read_file_bytes(&bytes).unwrap();
        read_sample(payload).unwrap();
    }

    #[test]
    fn bad_magic_is_refused() {
        assert_eq!(
            read_file_bytes(b"not a checkpoint"),
            Err(CkptError::BadMagic)
        );
        assert_eq!(read_file_bytes(b""), Err(CkptError::BadMagic));
    }

    #[test]
    fn version_mismatch_names_the_found_version() {
        let mut bytes = sample().into_file_bytes();
        bytes[10] = b'9'; // "pim-ckpt/v1" -> "pim-ckpt/v9"
        match read_file_bytes(&bytes) {
            Err(CkptError::VersionMismatch { found }) => assert_eq!(found, "pim-ckpt/v9"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncation_is_refused_at_every_length() {
        let bytes = sample().into_file_bytes();
        for cut in 0..bytes.len() {
            let r = read_file_bytes(&bytes[..cut]);
            assert!(r.is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn every_single_bit_flip_is_refused_or_detected() {
        let bytes = sample().into_file_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[i] ^= 1 << bit;
                // Either the framing refuses it, or (if the flip hit
                // the checksum trailer vs payload consistently — it
                // cannot, for a single flip) the decode refuses it.
                // Never a panic, never a silent success.
                let refused = match read_file_bytes(&m) {
                    Err(_) => true,
                    Ok(p) => read_sample(p).is_err(),
                };
                assert!(refused, "flip at byte {i} bit {bit} went undetected");
            }
        }
    }

    #[test]
    fn section_over_and_under_read_are_corruption() {
        let mut w = Writer::new();
        w.section("s", |w| w.put_u64(1));
        let bytes = w.into_file_bytes();
        let payload = read_file_bytes(&bytes).unwrap();
        // Under-read.
        let mut r = Reader::new(payload);
        let e = r.section("s", |_r| Ok(())).unwrap_err();
        assert!(matches!(e, CkptError::Corrupt { .. }), "{e}");
        // Over-read.
        let mut r = Reader::new(payload);
        let e = r
            .section("s", |r| {
                r.get_u64()?;
                r.get_u64()
            })
            .unwrap_err();
        assert!(matches!(e, CkptError::Corrupt { .. }), "{e}");
        // Wrong name.
        let mut r = Reader::new(payload);
        let e = r.section("t", |_r| Ok(())).unwrap_err();
        assert!(e.to_string().contains("expected section `t`"), "{e}");
    }

    #[test]
    fn atomic_write_and_validate_destination() {
        let dir = std::env::temp_dir().join(format!("pim_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.bin");
        validate_destination(&path).unwrap();
        assert!(!path.exists(), "probe left a file behind");
        atomic_write(&path, b"hello").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        validate_destination(&path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        atomic_write(&path, b"world").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"world");
        // No temp droppings.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().starts_with('.'))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        assert!(validate_destination(Path::new("/nonexistent-dir-pim/x.bin")).is_err());
    }

    #[test]
    fn checkpoint_spec_parses() {
        assert_eq!(parse_checkpoint_spec("ck.bin"), Ok(("ck.bin".into(), None)));
        assert_eq!(
            parse_checkpoint_spec("ck.bin:every=500"),
            Ok(("ck.bin".into(), Some(500)))
        );
        assert!(parse_checkpoint_spec("ck.bin:every=0").is_err());
        assert!(parse_checkpoint_spec("ck.bin:every=x").is_err());
        assert!(parse_checkpoint_spec(":every=5").is_err());
    }

    #[test]
    fn file_specs_parse_with_named_flag_diagnostics() {
        use super::spec::parse_file_spec;
        let s = parse_file_spec("journal", "sweep.wal", &["fsync"]).unwrap();
        assert_eq!(s.path, "sweep.wal");
        assert!(s.opts.is_empty());
        // Multiple trailing options, in source order; the last wins on get.
        let s = parse_file_spec("trace", "out.json:cap=5:cap=9", &["cap"]).unwrap();
        assert_eq!(s.path, "out.json");
        assert_eq!(s.get("cap"), Some("9"));
        assert_eq!(s.get_u64("trace", "cap"), Ok(Some(9)));
        // Windows-style drive colons are path, not options.
        let s = parse_file_spec("trace", "C:/t/out.json:cap=1", &["cap"]).unwrap();
        assert_eq!(s.path, "C:/t/out.json");
        // Typos are named, not silently folded into the path.
        let e = parse_file_spec("checkpoint", "ck.bin:evry=5", &["every"]).unwrap_err();
        assert!(e.contains("unknown key `evry` in --checkpoint"), "{e}");
        let e = parse_file_spec("trace", "out.json:cap=", &["cap"]).unwrap_err();
        assert!(e.contains("empty value for `cap` in --trace"), "{e}");
        let e = parse_file_spec("sweep", "", &["x"]).unwrap_err();
        assert!(e.contains("empty path in --sweep"), "{e}");
        let e = parse_file_spec("trace", "out.json:cap=zz", &["cap"])
            .unwrap()
            .get_u64("trace", "cap")
            .unwrap_err();
        assert!(e.contains("bad value `zz` for `cap` in --trace"), "{e}");
    }

    #[test]
    fn kv_specs_parse_with_named_flag_diagnostics() {
        use super::spec::parse_kv_spec;
        assert_eq!(
            parse_kv_spec("faults", "seed=7,rate=0.01"),
            Ok(vec![
                ("seed".into(), "7".into()),
                ("rate".into(), "0.01".into())
            ])
        );
        assert_eq!(parse_kv_spec("chaos", ""), Ok(vec![]));
        let e = parse_kv_spec("faults", "seed").unwrap_err();
        assert!(
            e.contains("field `seed` in --faults is not key=value"),
            "{e}"
        );
    }

    #[test]
    fn intern_deduplicates() {
        let a = intern("bus_nack");
        let b = intern("bus_nack");
        assert!(std::ptr::eq(a, b));
        assert_eq!(intern("pe_stall"), "pe_stall");
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("pim_ckpt_disk_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.bin");
        save_to_path(&path, sample()).unwrap();
        let payload = load_from_path(&path).unwrap();
        read_sample(&payload).unwrap();
        match load_from_path(&dir.join("missing.bin")) {
            Err(CkptError::Io(d)) => assert!(d.contains("missing.bin"), "{d}"),
            other => panic!("{other:?}"),
        }
    }
}
