//! Deterministic host-I/O fault injection under the persistence stack.
//!
//! Every durable artifact in the workspace — `pim-ckpt/v1` snapshots,
//! the `pim-swl/v1` sweep journal, `pim-status/v1` telemetry, the JSON
//! reports and traces — flows through the primitives in this module:
//! [`write_atomic`] (temp + fsync + rename), [`read_file`], and
//! [`append_sync`] (append + fdatasync with truncate-back recovery).
//! With no fault plan installed they cost one relaxed atomic load over
//! the plain syscalls; with `--io-chaos` they consult a seeded,
//! deterministic fault plan and inject disk failures *under* the real
//! persistence code, so the recovery paths the binaries ship are the
//! ones the torture suite exercises.
//!
//! # Fault plan
//!
//! The plan is a pure function keyed `(seed, op-index, path-class,
//! attempt)` through the same splitmix64 mix discipline as
//! `pim-fault`'s worker-level plans: no mutable PRNG state, so the
//! schedule is reproducible from the seed alone and independent of
//! thread interleaving for any fixed op. Rates are in parts per million
//! (no floating point). Injected kinds:
//!
//! - **enospc** — the write reports a full disk, possibly after putting
//!   a real prefix of the bytes on disk;
//! - **eio** — a write, fsync, rename, or read fails outright;
//! - **short** — a write persists only a prefix of the bytes and fails;
//! - **torn** — a read returns fewer bytes than the file holds (never
//!   surfaced to callers: the shim detects and retries it, because a
//!   torn read that *escaped* into journal replay would truncate valid
//!   acknowledged records).
//!
//! # Recovery policy
//!
//! Injection and recovery are bounded by construction: attempts
//! `0..max_retries` may fault, attempt `max_retries` never does (the
//! same final-attempt discipline as the `--chaos` worker killer), so
//! every operation converges to the undisturbed result — unless the
//! plan's `kill=CLASS@N` marker says that class's disk *died*, in which
//! case every attempt faults and the error escapes to the caller's own
//! policy: fail loud by name (checkpoints, reports), degrade to a
//! one-line warning (telemetry side files), or finish the sweep
//! degraded with resume disabled (the journal).

use std::io::{self, Seek as _, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One million: rates are expressed in parts per million.
pub const PPM: u64 = 1_000_000;

/// Fault rate applied when `--io-chaos` names only a seed: 15% of
/// eligible attempts draw a fault. High enough that a short sweep sees
/// faults on most files, low enough that the default retry budget
/// converges with margin to spare.
pub const DEFAULT_RATE_PPM: u64 = 150_000;

/// Default bounded retry budget: up to 4 faulted attempts, then one
/// final attempt that the plan is forbidden to touch.
pub const DEFAULT_RETRIES: u32 = 4;

/// Default base backoff between faulted attempts, in milliseconds
/// (doubled per attempt; deterministic, no jitter).
pub const DEFAULT_BACKOFF_MS: u64 = 1;

/// Which persistence path an operation belongs to. The class is part of
/// the fault key (so one seed exercises different schedules per path)
/// and the unit of the `kill=CLASS@N` dead-disk marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathClass {
    /// The pim-swl/v1 sweep journal (durability-critical).
    Journal,
    /// pim-ckpt/v1 snapshot files (durability-critical).
    Checkpoint,
    /// JSON reports and result tables (fail loud by name).
    Report,
    /// Chrome-trace exports (fail loud by name).
    Trace,
    /// pim-status/v1 snapshots and Prometheus side files (degrade to a
    /// one-line warning; never perturb the run).
    Telemetry,
    /// Benchmark outputs from `pimbench`/`repro` side files.
    Bench,
    /// Anything not otherwise classified.
    Other,
}

impl PathClass {
    /// Every class, in fault-key index order.
    pub const ALL: [PathClass; 7] = [
        PathClass::Journal,
        PathClass::Checkpoint,
        PathClass::Report,
        PathClass::Trace,
        PathClass::Telemetry,
        PathClass::Bench,
        PathClass::Other,
    ];

    /// The spec token and diagnostic name for this class.
    pub fn label(self) -> &'static str {
        match self {
            PathClass::Journal => "journal",
            PathClass::Checkpoint => "checkpoint",
            PathClass::Report => "report",
            PathClass::Trace => "trace",
            PathClass::Telemetry => "telemetry",
            PathClass::Bench => "bench",
            PathClass::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            PathClass::Journal => 0,
            PathClass::Checkpoint => 1,
            PathClass::Report => 2,
            PathClass::Trace => 3,
            PathClass::Telemetry => 4,
            PathClass::Bench => 5,
            PathClass::Other => 6,
        }
    }

    fn parse(s: &str) -> Option<PathClass> {
        PathClass::ALL.iter().copied().find(|c| c.label() == s)
    }
}

/// The direction of an operation, for kind eligibility: write faults
/// (enospc, short) cannot strike a read and torn reads cannot strike a
/// write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDir {
    /// A read of a durable file.
    Read,
    /// A write, sync, or rename of a durable file.
    Write,
}

/// The kind of host-I/O fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The disk reports full (`ENOSPC`), possibly after a real prefix
    /// of the bytes landed.
    Enospc,
    /// A write, fsync, rename, or read fails outright (`EIO`).
    Eio,
    /// Only a prefix of the bytes is persisted before the write fails.
    ShortWrite,
    /// A read returns fewer bytes than the file holds; detected and
    /// retried inside the shim, never surfaced.
    TornRead,
}

impl IoFaultKind {
    /// Every kind, in stats order.
    pub const ALL: [IoFaultKind; 4] = [
        IoFaultKind::Enospc,
        IoFaultKind::Eio,
        IoFaultKind::ShortWrite,
        IoFaultKind::TornRead,
    ];

    /// The spec token and diagnostic name for this kind.
    pub fn label(self) -> &'static str {
        match self {
            IoFaultKind::Enospc => "enospc",
            IoFaultKind::Eio => "eio",
            IoFaultKind::ShortWrite => "short",
            IoFaultKind::TornRead => "torn",
        }
    }

    fn index(self) -> usize {
        match self {
            IoFaultKind::Enospc => 0,
            IoFaultKind::Eio => 1,
            IoFaultKind::ShortWrite => 2,
            IoFaultKind::TornRead => 3,
        }
    }

    fn eligible(self, dir: IoDir) -> bool {
        match dir {
            IoDir::Read => matches!(self, IoFaultKind::Eio | IoFaultKind::TornRead),
            IoDir::Write => !matches!(self, IoFaultKind::TornRead),
        }
    }

    fn parse(s: &str) -> Option<IoFaultKind> {
        IoFaultKind::ALL.iter().copied().find(|k| k.label() == s)
    }
}

/// A parsed `--io-chaos seed=N[,rate=PPM][,kinds=...]` plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoChaosConfig {
    /// Root of every fault decision.
    pub seed: u64,
    /// Probability, in parts per million, that an eligible attempt
    /// draws a fault.
    pub rate_ppm: u64,
    /// The fault kinds the plan may draw from.
    pub kinds: Vec<IoFaultKind>,
    /// Faulted attempts permitted per operation; attempt `max_retries`
    /// is always fault-free, so any plan without `kill` converges.
    pub max_retries: u32,
    /// Base backoff between faulted attempts, in milliseconds.
    pub backoff_ms: u64,
    /// `Some((class, n))`: the `n`th and every later operation on
    /// `class` fails on *every* attempt — the disk died. Used to drive
    /// the degraded-sweep path end to end.
    pub kill: Option<(PathClass, u64)>,
}

impl IoChaosConfig {
    /// Parses the `--io-chaos` value: `seed=N` (required) plus optional
    /// `rate=PPM`, `kinds=eio+short+...`, `retries=N`, `backoff_ms=N`,
    /// and `kill=CLASS@N`. Duplicate keys are last-wins; every error
    /// names the flag and the offending key or value (exit-2 material).
    pub fn parse_spec(spec: &str) -> Result<IoChaosConfig, String> {
        let pairs = crate::spec::parse_kv_spec("io-chaos", spec)?;
        let mut cfg = IoChaosConfig {
            seed: 0,
            rate_ppm: DEFAULT_RATE_PPM,
            kinds: IoFaultKind::ALL.to_vec(),
            max_retries: DEFAULT_RETRIES,
            backoff_ms: DEFAULT_BACKOFF_MS,
            kill: None,
        };
        let mut have_seed = false;
        let bad = |key: &str, value: &str| format!("bad value `{value}` for `{key}` in --io-chaos");
        for (key, value) in &pairs {
            match key.as_str() {
                "seed" => {
                    cfg.seed = value.parse().map_err(|_| bad(key, value))?;
                    have_seed = true;
                }
                "rate" => {
                    cfg.rate_ppm = value.parse().map_err(|_| bad(key, value))?;
                    if cfg.rate_ppm > PPM {
                        return Err(format!(
                            "rate in --io-chaos is parts per million and must be <= {PPM}, \
                             got {value}"
                        ));
                    }
                }
                "kinds" => {
                    let mut kinds = Vec::new();
                    for token in value.split('+').filter(|t| !t.is_empty()) {
                        let kind = IoFaultKind::parse(token).ok_or_else(|| {
                            format!(
                                "unknown kind `{token}` in --io-chaos (accepted: enospc, eio, \
                                 short, torn)"
                            )
                        })?;
                        if !kinds.contains(&kind) {
                            kinds.push(kind);
                        }
                    }
                    if kinds.is_empty() {
                        return Err("empty `kinds` in --io-chaos".into());
                    }
                    cfg.kinds = kinds;
                }
                "retries" => cfg.max_retries = value.parse().map_err(|_| bad(key, value))?,
                "backoff_ms" => cfg.backoff_ms = value.parse().map_err(|_| bad(key, value))?,
                "kill" => {
                    let Some((class, n)) = value.split_once('@') else {
                        return Err(format!(
                            "kill in --io-chaos must be CLASS@N (e.g. journal@3), got `{value}`"
                        ));
                    };
                    let class = PathClass::parse(class).ok_or_else(|| {
                        format!(
                            "unknown class `{class}` in --io-chaos kill (accepted: {})",
                            PathClass::ALL.map(PathClass::label).join(", ")
                        )
                    })?;
                    let n: u64 = n.parse().map_err(|_| bad(key, value))?;
                    cfg.kill = Some((class, n));
                }
                other => {
                    return Err(format!(
                        "unknown key `{other}` in --io-chaos (accepted: seed, rate, kinds, \
                         retries, backoff_ms, kill)"
                    ));
                }
            }
        }
        if !have_seed {
            return Err("missing `seed` in --io-chaos".into());
        }
        Ok(cfg)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An injected fault plus the mix key that sub-decisions (which syscall
/// an EIO strikes, how long a short write's surviving prefix is) are
/// derived from.
#[derive(Debug, Clone, Copy)]
struct Inject {
    kind: IoFaultKind,
    key: u64,
}

fn raw_decide(
    cfg: &IoChaosConfig,
    op_index: u64,
    class: PathClass,
    dir: IoDir,
    attempt: u32,
) -> Option<Inject> {
    if cfg.rate_ppm == 0 || attempt >= cfg.max_retries {
        return None;
    }
    let eligible: Vec<IoFaultKind> = cfg
        .kinds
        .iter()
        .copied()
        .filter(|k| k.eligible(dir))
        .collect();
    if eligible.is_empty() {
        return None;
    }
    let key = splitmix64(
        cfg.seed
            ^ splitmix64(op_index ^ ((class.index() as u64) << 56) ^ ((u64::from(attempt)) << 48)),
    );
    if key % PPM >= cfg.rate_ppm {
        return None;
    }
    let pick = splitmix64(key) % eligible.len() as u64;
    Some(Inject {
        kind: eligible[pick as usize],
        key,
    })
}

/// The pure fault decision: does attempt `attempt` of logical operation
/// `op_index` on `class` in direction `dir` draw a fault, and of what
/// kind? Same inputs, same answer — no hidden state — and any
/// `attempt >= cfg.max_retries` is `None` by construction, which is the
/// convergence guarantee the torture suite pins.
pub fn decide(
    cfg: &IoChaosConfig,
    op_index: u64,
    class: PathClass,
    dir: IoDir,
    attempt: u32,
) -> Option<IoFaultKind> {
    raw_decide(cfg, op_index, class, dir, attempt).map(|i| i.kind)
}

/// Counters the shim keeps while a plan is installed, for the one-line
/// stderr summary the binaries print on exit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoChaosStats {
    /// Logical operations that consulted the plan.
    pub ops: u64,
    /// Faults injected, indexed like [`IoFaultKind::ALL`].
    pub injected: [u64; 4],
    /// Extra attempts spent recovering from faults.
    pub retries: u64,
    /// Operations that failed every permitted attempt (only possible
    /// under `kill`, or when a *real* disk error persists).
    pub exhausted: u64,
}

impl IoChaosStats {
    /// Total faults injected across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }
}

struct State {
    cfg: IoChaosConfig,
    op_index: AtomicU64,
    class_ops: [AtomicU64; 7],
    injected: [AtomicU64; 4],
    retries: AtomicU64,
    exhausted: AtomicU64,
}

impl State {
    fn new(cfg: IoChaosConfig) -> State {
        State {
            cfg,
            op_index: AtomicU64::new(0),
            class_ops: Default::default(),
            injected: Default::default(),
            retries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Arc<State>>> = Mutex::new(None);

fn lock_state() -> MutexGuard<'static, Option<Arc<State>>> {
    match STATE.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn current() -> Option<Arc<State>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    lock_state().clone()
}

/// Installs `cfg` as the process-wide fault plan. Binaries call this
/// once at flag-parse time; subsequent durable I/O consults the plan.
pub fn install(cfg: IoChaosConfig) {
    *lock_state() = Some(Arc::new(State::new(cfg)));
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes the process-wide fault plan (tests; binaries never need to).
pub fn uninstall() {
    ACTIVE.store(false, Ordering::SeqCst);
    *lock_state() = None;
}

/// True when a fault plan is installed.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// A snapshot of the installed plan's counters, if any.
pub fn stats() -> Option<IoChaosStats> {
    let state = current()?;
    let mut s = IoChaosStats {
        ops: state.op_index.load(Ordering::Relaxed),
        retries: state.retries.load(Ordering::Relaxed),
        exhausted: state.exhausted.load(Ordering::Relaxed),
        ..IoChaosStats::default()
    };
    for (slot, counter) in s.injected.iter_mut().zip(&state.injected) {
        *slot = counter.load(Ordering::Relaxed);
    }
    Some(s)
}

/// The `[io-chaos]` stderr summary the binaries print on exit, or
/// `None` when no plan is installed. Stderr only: report and stdout
/// bytes must stay byte-identical to the undisturbed run.
pub fn summary_line() -> Option<String> {
    let state = current()?;
    let s = stats()?;
    Some(format!(
        "[io-chaos] seed={} ops={} injected={} (enospc={} eio={} short={} torn={}) \
         retries={} exhausted={}",
        state.cfg.seed,
        s.ops,
        s.total_injected(),
        s.injected[0],
        s.injected[1],
        s.injected[2],
        s.injected[3],
        s.retries,
        s.exhausted,
    ))
}

/// Serializes and scopes a plan for in-process tests: holds a global
/// test gate (so concurrent `#[test]`s never fight over the one
/// process-wide plan) and uninstalls on drop.
pub struct ScopedIoChaos {
    _gate: MutexGuard<'static, ()>,
}

impl ScopedIoChaos {
    /// Installs `cfg` until the returned guard drops.
    pub fn install(cfg: IoChaosConfig) -> ScopedIoChaos {
        static GATE: Mutex<()> = Mutex::new(());
        let gate = match GATE.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        install(cfg);
        ScopedIoChaos { _gate: gate }
    }
}

impl Drop for ScopedIoChaos {
    fn drop(&mut self) {
        uninstall();
    }
}

/// One logical operation's view of the plan: the op index is drawn once
/// when the operation starts, then each attempt consults the pure
/// decision with the attempt number — so a retried operation re-rolls
/// the attempt, not the operation.
struct OpPlan {
    state: Arc<State>,
    class: PathClass,
    op_index: u64,
    killed: bool,
}

impl OpPlan {
    fn begin(class: PathClass) -> Option<OpPlan> {
        let state = current()?;
        let op_index = state.op_index.fetch_add(1, Ordering::Relaxed);
        let class_op = state.class_ops[class.index()].fetch_add(1, Ordering::Relaxed);
        let killed = matches!(state.cfg.kill, Some((kc, n)) if kc == class && class_op >= n);
        Some(OpPlan {
            state,
            class,
            op_index,
            killed,
        })
    }

    fn max_retries(&self) -> u32 {
        self.state.cfg.max_retries
    }

    fn fault(&self, dir: IoDir, attempt: u32) -> Option<Inject> {
        let inject = if self.killed {
            // The class's disk died: every attempt faults, including the
            // normally-protected final one, so the error escapes to the
            // caller's policy.
            Some(Inject {
                kind: IoFaultKind::Eio,
                key: splitmix64(
                    self.state.cfg.seed ^ splitmix64(self.op_index ^ u64::from(attempt)),
                ),
            })
        } else {
            raw_decide(&self.state.cfg, self.op_index, self.class, dir, attempt)
        };
        if let Some(inj) = &inject {
            self.state.injected[inj.kind.index()].fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    fn backoff(&self, attempt: u32) {
        self.state.retries.fetch_add(1, Ordering::Relaxed);
        let ms = self
            .state
            .cfg
            .backoff_ms
            .saturating_mul(1u64 << attempt.min(6));
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }

    fn exhausted(&self) {
        self.state.exhausted.fetch_add(1, Ordering::Relaxed);
    }
}

/// A syscall-attributed I/O failure: which primitive failed (`open`,
/// `append`, `fsync`, `rename`, `read`, `truncate`) and the underlying
/// error. [`append_sync`] reports these so the journal can name the
/// failing syscall in its diagnostics.
#[derive(Debug)]
pub struct SyscallError {
    /// The failing primitive, by name.
    pub syscall: &'static str,
    /// The underlying I/O error (real or injected).
    pub error: io::Error,
}

impl std::fmt::Display for SyscallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed: {}", self.syscall, self.error)
    }
}

impl std::error::Error for SyscallError {}

impl From<SyscallError> for io::Error {
    fn from(e: SyscallError) -> io::Error {
        io::Error::new(e.error.kind(), format!("{} failed: {}", e.syscall, e.error))
    }
}

fn injected_err(kind: IoFaultKind, detail: String) -> io::Error {
    let name = match kind {
        IoFaultKind::Enospc => "ENOSPC (disk full)",
        IoFaultKind::Eio => "EIO",
        IoFaultKind::ShortWrite => "short write",
        IoFaultKind::TornRead => "torn read",
    };
    io::Error::other(format!("io-chaos: injected {name}: {detail}"))
}

fn warn_dir_sync_failed(dir: &Path, e: &io::Error) {
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "warning: cannot fsync directory {}: {e} (renames may not survive power loss; \
             further directory-fsync failures will not be reported)",
            dir.display()
        );
    }
}

fn write_atomic_attempt(
    path: &Path,
    dir: &Path,
    tmp: &Path,
    bytes: &[u8],
    fault: Option<Inject>,
) -> io::Result<()> {
    let mut f = std::fs::File::create(tmp)?;
    if let Some(inj) = fault {
        // All injected write faults strike the temp file or the rename
        // *before* it happens, so the destination is never touched — the
        // atomicity contract holds even under injection; what recovery
        // must handle is the stranded partial temp file.
        let prefix = |n: u64| (n % (bytes.len() as u64 + 1)) as usize;
        match inj.kind {
            IoFaultKind::Enospc => {
                let keep = prefix(inj.key >> 8);
                let _ = f.write_all(&bytes[..keep]);
                return Err(injected_err(
                    inj.kind,
                    format!("writing {} ({keep} bytes landed)", tmp.display()),
                ));
            }
            IoFaultKind::ShortWrite => {
                let keep = prefix(inj.key >> 8);
                f.write_all(&bytes[..keep])?;
                let _ = f.sync_all();
                return Err(injected_err(
                    inj.kind,
                    format!("{keep} of {} bytes to {}", bytes.len(), tmp.display()),
                ));
            }
            IoFaultKind::Eio => match (inj.key >> 8) % 3 {
                0 => {
                    return Err(injected_err(inj.kind, format!("writing {}", tmp.display())));
                }
                1 => {
                    f.write_all(bytes)?;
                    return Err(injected_err(
                        inj.kind,
                        format!("fsync of {}", tmp.display()),
                    ));
                }
                _ => {
                    f.write_all(bytes)?;
                    f.sync_all()?;
                    return Err(injected_err(
                        inj.kind,
                        format!("rename of {} to {}", tmp.display(), path.display()),
                    ));
                }
            },
            IoFaultKind::TornRead => {}
        }
    }
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(tmp, path)?;
    // Make the rename itself durable. Failure does not invalidate the
    // write, but it is no longer silently discarded (satellite: surface
    // directory-fsync errors once).
    if let Err(e) = std::fs::File::open(dir).and_then(|d| d.sync_all()) {
        warn_dir_sync_failed(dir, &e);
    }
    Ok(())
}

/// Durably replaces `path` with `bytes` under the installed fault plan:
/// write a temp sibling, fsync, rename over the destination, fsync the
/// directory. Readers of `path` see either the old complete file or the
/// new complete file, never a partial one — injected faults strike the
/// temp file and are recovered by removing it and retrying (bounded;
/// the final attempt is fault-free unless the class's disk died).
pub fn write_atomic(class: PathClass, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let (dir, tmp) = crate::temp_sibling(path, "tmp");
    let plan = OpPlan::begin(class);
    let max = plan.as_ref().map(OpPlan::max_retries).unwrap_or(0);
    let mut last: Option<io::Error> = None;
    for attempt in 0..=max {
        let fault = plan.as_ref().and_then(|p| p.fault(IoDir::Write, attempt));
        match write_atomic_attempt(path, &dir, &tmp, bytes, fault) {
            Ok(()) => return Ok(()),
            Err(e) => {
                // Never strand the partial temp file (satellite: remove
                // the orphan on write/fsync/rename failure).
                let _ = std::fs::remove_file(&tmp);
                last = Some(e);
            }
        }
        if attempt < max {
            if let Some(p) = &plan {
                p.backoff(attempt);
            }
        }
    }
    if let Some(p) = &plan {
        p.exhausted();
    }
    Err(last.unwrap_or_else(|| io::Error::other("write failed")))
}

fn read_attempt(path: &Path, fault: Option<Inject>) -> io::Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    if let Some(inj) = fault {
        match inj.kind {
            IoFaultKind::Eio => {
                return Err(injected_err(
                    inj.kind,
                    format!("reading {}", path.display()),
                ));
            }
            IoFaultKind::TornRead => {
                // A real torn read would hand back a prefix; the shim
                // detects it (as a checksummed reader would) and reports
                // it as a failure to retry, so a truncated view never
                // escapes into replay logic that might truncate valid
                // records on the strength of it.
                let keep = (inj.key >> 8) as usize % (bytes.len() + 1);
                return Err(injected_err(
                    inj.kind,
                    format!("{keep} of {} bytes from {}", bytes.len(), path.display()),
                ));
            }
            _ => {}
        }
    }
    Ok(bytes)
}

/// Reads the whole file at `path` under the installed fault plan.
/// Injected read faults (EIO, torn reads) are retried with backoff; a
/// real `NotFound` returns immediately (retrying cannot create the
/// file).
pub fn read_file(class: PathClass, path: &Path) -> io::Result<Vec<u8>> {
    let plan = OpPlan::begin(class);
    let max = plan.as_ref().map(OpPlan::max_retries).unwrap_or(0);
    let mut last: Option<io::Error> = None;
    for attempt in 0..=max {
        let fault = plan.as_ref().and_then(|p| p.fault(IoDir::Read, attempt));
        match read_attempt(path, fault) {
            Ok(bytes) => return Ok(bytes),
            Err(e) => {
                if e.kind() == io::ErrorKind::NotFound {
                    return Err(e);
                }
                last = Some(e);
            }
        }
        if attempt < max {
            if let Some(p) = &plan {
                p.backoff(attempt);
            }
        }
    }
    if let Some(p) = &plan {
        p.exhausted();
    }
    Err(last.unwrap_or_else(|| io::Error::other("read failed")))
}

fn append_attempt(
    file: &mut std::fs::File,
    bytes: &[u8],
    fault: Option<Inject>,
) -> Result<(), SyscallError> {
    if let Some(inj) = fault {
        let prefix = |n: u64| (n % (bytes.len() as u64 + 1)) as usize;
        match inj.kind {
            IoFaultKind::Enospc => {
                let keep = prefix(inj.key >> 8);
                let _ = file.write_all(&bytes[..keep]);
                return Err(SyscallError {
                    syscall: "append",
                    error: injected_err(inj.kind, format!("{keep} bytes landed")),
                });
            }
            IoFaultKind::ShortWrite => {
                let keep = prefix(inj.key >> 8);
                if let Err(error) = file.write_all(&bytes[..keep]) {
                    return Err(SyscallError {
                        syscall: "append",
                        error,
                    });
                }
                let _ = file.sync_data();
                return Err(SyscallError {
                    syscall: "append",
                    error: injected_err(inj.kind, format!("{keep} of {} bytes", bytes.len())),
                });
            }
            IoFaultKind::Eio => {
                if (inj.key >> 8) % 2 == 0 {
                    return Err(SyscallError {
                        syscall: "append",
                        error: injected_err(inj.kind, "write refused".into()),
                    });
                }
                // The record's bytes land, but the fsync that would
                // acknowledge them fails: recovery must truncate them
                // back out, or an unacknowledged record would survive.
                if let Err(error) = file.write_all(bytes) {
                    return Err(SyscallError {
                        syscall: "append",
                        error,
                    });
                }
                return Err(SyscallError {
                    syscall: "fsync",
                    error: injected_err(inj.kind, "sync refused".into()),
                });
            }
            IoFaultKind::TornRead => {}
        }
    }
    file.write_all(bytes).map_err(|error| SyscallError {
        syscall: "append",
        error,
    })?;
    file.sync_data().map_err(|error| SyscallError {
        syscall: "fsync",
        error,
    })
}

/// Durably appends `bytes` to `file` (already positioned at `known_len`,
/// the length of the acknowledged prefix) and fsyncs, under the
/// installed fault plan. A faulted attempt — including one whose bytes
/// landed but whose fsync failed — is recovered by truncating the file
/// back to `known_len` and retrying, so the file only ever grows by
/// whole acknowledged records. If recovery itself fails, that error is
/// returned immediately (the file can no longer be trusted for
/// appends).
pub fn append_sync(
    class: PathClass,
    file: &mut std::fs::File,
    known_len: u64,
    bytes: &[u8],
) -> Result<(), SyscallError> {
    let plan = OpPlan::begin(class);
    let max = plan.as_ref().map(OpPlan::max_retries).unwrap_or(0);
    let mut last: Option<SyscallError> = None;
    for attempt in 0..=max {
        let fault = plan.as_ref().and_then(|p| p.fault(IoDir::Write, attempt));
        match append_attempt(file, bytes, fault) {
            Ok(()) => return Ok(()),
            Err(e) => {
                file.set_len(known_len).map_err(|error| SyscallError {
                    syscall: "truncate",
                    error,
                })?;
                file.seek(io::SeekFrom::Start(known_len))
                    .map_err(|error| SyscallError {
                        syscall: "seek",
                        error,
                    })?;
                last = Some(e);
            }
        }
        if attempt < max {
            if let Some(p) = &plan {
                p.backoff(attempt);
            }
        }
    }
    if let Some(p) = &plan {
        p.exhausted();
    }
    Err(last.unwrap_or_else(|| SyscallError {
        syscall: "append",
        error: io::Error::other("append failed"),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64, rate: u64) -> IoChaosConfig {
        IoChaosConfig {
            seed,
            rate_ppm: rate,
            kinds: IoFaultKind::ALL.to_vec(),
            max_retries: DEFAULT_RETRIES,
            backoff_ms: 0,
            kill: None,
        }
    }

    #[test]
    fn decide_is_pure_and_final_attempt_is_clean() {
        let c = cfg(42, 800_000);
        for op in 0..200u64 {
            for class in PathClass::ALL {
                for attempt in 0..=c.max_retries {
                    let a = decide(&c, op, class, IoDir::Write, attempt);
                    let b = decide(&c, op, class, IoDir::Write, attempt);
                    assert_eq!(a, b);
                    if attempt >= c.max_retries {
                        assert_eq!(a, None);
                    }
                }
            }
        }
    }

    #[test]
    fn rate_zero_never_faults_and_rate_ppm_always_faults_before_final() {
        let quiet = cfg(7, 0);
        let loud = cfg(7, PPM);
        for op in 0..100u64 {
            assert_eq!(
                decide(&quiet, op, PathClass::Journal, IoDir::Write, 0),
                None
            );
            assert!(decide(&loud, op, PathClass::Journal, IoDir::Write, 0).is_some());
        }
    }

    #[test]
    fn kinds_respect_direction() {
        let mut c = cfg(3, PPM);
        c.kinds = vec![IoFaultKind::TornRead];
        for op in 0..50u64 {
            assert_eq!(decide(&c, op, PathClass::Report, IoDir::Write, 0), None);
            assert_eq!(
                decide(&c, op, PathClass::Report, IoDir::Read, 0),
                Some(IoFaultKind::TornRead)
            );
        }
        c.kinds = vec![IoFaultKind::Enospc, IoFaultKind::ShortWrite];
        for op in 0..50u64 {
            assert_eq!(decide(&c, op, PathClass::Report, IoDir::Read, 0), None);
        }
    }

    #[test]
    fn parse_spec_accepts_the_documented_keys() {
        let c = IoChaosConfig::parse_spec(
            "seed=9,rate=250000,kinds=eio+torn,retries=2,backoff_ms=0,kill=journal@5",
        )
        .unwrap();
        assert_eq!(c.seed, 9);
        assert_eq!(c.rate_ppm, 250_000);
        assert_eq!(c.kinds, vec![IoFaultKind::Eio, IoFaultKind::TornRead]);
        assert_eq!(c.max_retries, 2);
        assert_eq!(c.kill, Some((PathClass::Journal, 5)));
    }

    #[test]
    fn parse_spec_refuses_hostile_inputs_by_name() {
        for (spec, needle) in [
            ("rate=5", "missing `seed`"),
            ("seed=x", "bad value `x` for `seed`"),
            ("seed=1,rate=2000001", "parts per million"),
            ("seed=1,kinds=quantum", "unknown kind `quantum`"),
            ("seed=1,kinds=", "empty `kinds`"),
            ("seed=1,bogus=2", "unknown key `bogus`"),
            ("seed=1,kill=nope@3", "unknown class `nope`"),
            ("seed=1,kill=journal", "must be CLASS@N"),
        ] {
            let err = IoChaosConfig::parse_spec(spec).unwrap_err();
            assert!(err.contains(needle), "spec `{spec}`: {err}");
            assert!(
                err.contains("io-chaos") || needle.contains("CLASS@N"),
                "spec `{spec}`: {err}"
            );
        }
        // Duplicate keys are last-wins, like every FileSpec flag.
        let c = IoChaosConfig::parse_spec("seed=1,seed=2").unwrap();
        assert_eq!(c.seed, 2);
    }

    #[test]
    fn write_atomic_converges_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("pim-vfs-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.bin");
        {
            let _guard = ScopedIoChaos::install(cfg(1234, 900_000));
            for round in 0..20u8 {
                let payload = vec![round; 1 + round as usize * 7];
                write_atomic(PathClass::Report, &path, &payload).unwrap();
                assert_eq!(std::fs::read(&path).unwrap(), payload);
            }
            assert!(stats().unwrap().total_injected() > 0);
        }
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "out.bin")
            .collect();
        assert!(leftovers.is_empty(), "stranded temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_class_fails_loud_while_others_converge() {
        let dir = std::env::temp_dir().join(format!("pim-vfs-kill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dead.bin");
        let mut c = cfg(5, 0);
        c.kill = Some((PathClass::Journal, 0));
        let _guard = ScopedIoChaos::install(c);
        let err = write_atomic(PathClass::Journal, &path, b"x").unwrap_err();
        assert!(err.to_string().contains("io-chaos"), "{err}");
        assert!(!path.exists());
        write_atomic(PathClass::Report, &path, b"fine").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"fine");
        assert_eq!(stats().unwrap().exhausted, 1);
        drop(_guard);
        std::fs::remove_dir_all(&dir).ok();
    }
}
