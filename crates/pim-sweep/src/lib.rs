//! Supervised sweep execution for the PIM cache evaluation.
//!
//! A *sweep* is a declarative grid of experiment cells — protocol ×
//! benchmark × scale × PE count × block size — executed under
//! supervision: each cell runs with a wall-clock timeout, panics and
//! simulation errors become structured per-cell failures, failed cells
//! are retried with bounded deterministic backoff and quarantined after
//! the attempt budget, and every completion is durably recorded in a
//! crash-safe write-ahead journal so a killed sweep resumes exactly
//! where it stopped (completed cells are served from the journal, never
//! re-run).
//!
//! The module split mirrors the cell lifecycle:
//!
//! * [`spec`] — parse a sweep spec and expand it into the cell grid;
//!   every cell has a canonical key string and a content digest;
//! * [`journal`] — the append-only WAL (`pim-swl/v1`): checksummed
//!   length-prefixed records, fsync'd per append, torn-tail tolerant on
//!   replay, refused (never silently reinterpreted) on header or
//!   spec-digest mismatch;
//! * [`exec`] — the supervised worker pool: retry/backoff/quarantine,
//!   cooperative SIGINT drain, and the deterministic `--chaos` fault
//!   injector for self-tests;
//! * [`report`] — the `pim-sweep/v1` report document, byte-identical
//!   across thread counts, resume, and chaos, with all nondeterministic
//!   host data confined to its `provenance` block.
//!
//! Every sweep — even one interrupted or degraded by quarantined cells
//! — produces a valid report enumerating the fate of every cell.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod exec;
pub mod journal;
pub mod report;
pub mod spec;

pub use exec::{run_sweep, CellFate, ExecConfig, SweepResult};
pub use journal::{CellOutcome, CellRow, Journal, JournalError};
pub use spec::{Cell, CellBench, SweepSpec};
