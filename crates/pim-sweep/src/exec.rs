//! The supervised sweep executor: a bounded worker pool with per-cell
//! retry, deterministic backoff, quarantine, and graceful degradation.
//!
//! # Cell lifecycle
//!
//! ```text
//!            ┌────────── served from journal ──────────┐
//!            │                                          ▼
//! pending ──qsort──> claimed ──run──> done ──append──> recorded
//!            │          │ failure/panic
//!            │          ▼
//!            │       backoff ──retry──> claimed   (attempt < budget)
//!            │          │
//!            │          ▼ budget exhausted
//!            │      quarantined ──append──> recorded
//!            │
//!            └── cancel raised before claim ──> skipped (not journaled)
//! ```
//!
//! Every attempt runs under `catch_unwind`, so a panicking cell (or a
//! chaos-killed worker) is a structured per-cell failure, never a dead
//! sweep. The *final* permitted attempt is always chaos-free, which is
//! what makes `--chaos` runs converge to the undisturbed result: chaos
//! can consume attempts and wall time, but a deterministic cell's last
//! attempt decides the same outcome either way.
//!
//! Backoff between attempts is pure in (base, cell digest, attempt) —
//! no clocks, no RNG state — so retry schedules are reproducible.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use pim_fault::chaos::{ChaosEvent, ChaosPlan};
use pim_obs::Histogram;
use pim_telemetry::RunStatus;
use workloads::runner::{run_cell, CellControl, CellError, RunReport};

use crate::journal::{CellOutcome, CellRow, Journal, JournalError};
use crate::spec::{Cell, CellBench};

/// Executor policy for one sweep invocation.
#[derive(Debug)]
pub struct ExecConfig {
    /// Worker threads (0 = the host's available parallelism).
    pub threads: usize,
    /// Attempts per cell before quarantine (≥ 1).
    pub max_attempts: u32,
    /// Per-cell wall-clock timeout in seconds (`None` = unbounded).
    pub timeout_secs: Option<u64>,
    /// Base backoff between attempts, in milliseconds.
    pub backoff_ms: u64,
    /// The chaos fault injector for self-tests (never consulted on a
    /// cell's final permitted attempt).
    pub chaos: Option<ChaosPlan>,
}

/// The fate of one cell in the final report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellFate {
    /// Completed and validated.
    Done(CellRow),
    /// Failed every permitted attempt; the sweep continued without it.
    Quarantined {
        /// Attempts consumed.
        attempts: u32,
        /// The final (chaos-free) attempt's failure.
        error: String,
    },
    /// Never ran to completion this invocation: the cancel flag was
    /// raised first. A later resume picks it up from the journal.
    Skipped,
}

/// Everything one executor invocation produced.
#[derive(Debug)]
pub struct SweepResult {
    /// Per-cell fates, in grid order.
    pub cells: Vec<(Cell, CellFate)>,
    /// Cells actually executed by this invocation.
    pub executed: u64,
    /// Cells served from the journal without running.
    pub reused: u64,
    /// Extra attempts consumed beyond the first, across all cells.
    pub retries: u64,
    /// The first journal append failure, if any (the sweep keeps
    /// running; the report is still produced).
    pub journal_error: Option<JournalError>,
    /// Worker threads that died outside the per-attempt unwind guard.
    pub worker_deaths: u64,
    /// Wall milliseconds per executed cell (done and quarantined),
    /// merged across workers. Host-dependent — reports may only place
    /// it in the provenance block.
    pub wall_hist: Histogram,
}

impl SweepResult {
    /// Whether the sweep degraded: any quarantined or skipped cell,
    /// journal trouble, or a dead worker. Degraded sweeps still report
    /// every cell; callers surface the difference via the exit code.
    pub fn degraded(&self) -> bool {
        self.journal_error.is_some()
            || self.worker_deaths > 0
            || self
                .cells
                .iter()
                .any(|(_, fate)| !matches!(fate, CellFate::Done(_)))
    }
}

/// Deterministic backoff before retry `attempt + 1`: exponential in the
/// attempt with a content-addressed jitter so colliding cells do not
/// retry in lockstep. Pure in its arguments — reproducible schedules.
pub fn backoff_delay_ms(base_ms: u64, digest: u64, attempt: u32) -> u64 {
    let exp = base_ms.saturating_mul(1u64 << attempt.min(6));
    let mut key = [0u8; 12];
    key[..8].copy_from_slice(&digest.to_le_bytes());
    key[8..].copy_from_slice(&attempt.to_le_bytes());
    let jitter = pim_ckpt::fnv1a64(&key) % (exp / 4 + 1);
    exp.saturating_add(jitter).min(5_000)
}

fn row_of(report: &RunReport) -> CellRow {
    CellRow {
        reductions: report.machine.reductions,
        suspensions: report.machine.suspensions,
        references: report.refs.total(),
        bus_cycles: report.bus.total_cycles(),
        lookups: report.access.lookups,
        hits: report.access.hits,
        lr_total: report.locks.lr_total,
        makespan: report.makespan,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: (non-string payload)".to_string()
    }
}

/// One attempt of one cell, inside the unwind guard.
fn run_attempt(
    cell: &Cell,
    cfg: &ExecConfig,
    cancel: Option<&AtomicBool>,
    chaos: Option<ChaosEvent>,
    telemetry: Option<&RunStatus>,
) -> Result<CellRow, CellError> {
    match chaos {
        Some(ChaosEvent::Kill) => {
            if let Some(t) = telemetry {
                t.chaos_kill();
            }
            panic!("chaos: worker killed mid-cell (`{}`)", cell.key())
        }
        Some(ChaosEvent::Delay(ms)) => {
            if let Some(t) = telemetry {
                t.chaos_delay();
            }
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        None => {}
    }
    match cell.bench {
        CellBench::Poison => panic!(
            "poison cell `{}` panicked (deterministic self-test failure)",
            cell.key()
        ),
        CellBench::Real(bench) => {
            // The telemetry tick lives on this frame so the control
            // block can borrow it; it feeds chunk-boundary progress
            // without touching the run itself.
            let tick;
            let progress: Option<&(dyn Fn(u64) + Sync)> = match telemetry {
                Some(t) => {
                    tick = move |steps: u64| t.engine_chunk(steps);
                    Some(&tick)
                }
                None => None,
            };
            let ctl = CellControl {
                deadline: cfg
                    .timeout_secs
                    .map(|s| std::time::Instant::now() + std::time::Duration::from_secs(s)),
                cancel,
                budget_secs: cfg.timeout_secs.unwrap_or(0),
                progress,
            };
            run_cell(cell.protocol, bench, cell.scale, cell.config(), &ctl).map(|r| row_of(&r))
        }
    }
}

/// Runs the attempt loop for one cell. Returns the fate plus the number
/// of attempts consumed.
fn supervise_cell(
    cell: &Cell,
    cfg: &ExecConfig,
    cancel: Option<&AtomicBool>,
    telemetry: Option<&RunStatus>,
) -> (CellFate, u32) {
    let digest = cell.digest();
    let mut last_error = String::new();
    for attempt in 0..cfg.max_attempts.max(1) {
        if let Some(t) = telemetry {
            if attempt == 0 {
                t.cell_running(&cell.key());
            } else {
                t.cell_retrying(&cell.key(), attempt + 1);
            }
        }
        let final_attempt = attempt + 1 >= cfg.max_attempts.max(1);
        // The final permitted attempt is always chaos-free: chaos may
        // consume the retry budget's slack, never the budget itself.
        let chaos = if final_attempt {
            None
        } else {
            cfg.chaos.as_ref().and_then(|p| p.decide(digest, attempt))
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_attempt(cell, cfg, cancel, chaos, telemetry)
        }));
        match outcome {
            Ok(Ok(row)) => return (CellFate::Done(row), attempt + 1),
            Ok(Err(CellError::Cancelled { .. })) => return (CellFate::Skipped, attempt + 1),
            Ok(Err(e)) => last_error = e.to_string(),
            Err(payload) => last_error = panic_message(payload),
        }
        if final_attempt {
            break;
        }
        // Between attempts the cancel flag wins over the backoff sleep.
        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            return (CellFate::Skipped, attempt + 1);
        }
        std::thread::sleep(std::time::Duration::from_millis(backoff_delay_ms(
            cfg.backoff_ms,
            digest,
            attempt,
        )));
    }
    (
        CellFate::Quarantined {
            attempts: cfg.max_attempts.max(1),
            error: last_error,
        },
        cfg.max_attempts.max(1),
    )
}

/// Runs one unit of work under the supervisor's unwind guard: a panic
/// becomes `Err(message)` instead of a dead process. This is the same
/// containment every sweep attempt runs under, exposed for harnesses
/// (like `repro`) that supervise their own work lists.
pub fn contained<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(panic_message)
}

/// Silences the process-global panic hook. Supervised cells *expect*
/// panics (poison cells, chaos kills) and capture the message into the
/// per-cell failure, so the default hook's backtrace spew is pure noise
/// on a supervisor's stderr. Binaries call this once before the sweep;
/// the library never touches the hook on its own.
pub fn silence_panic_output() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Executes `cells` under supervision.
///
/// Cells whose digest appears in `prior` (replayed from the journal)
/// are served from it without running — that is what makes a resumed
/// sweep converge instead of repeating work. Everything else runs on
/// up to `cfg.threads` workers; completions and quarantines are
/// appended (and fsync'd) to `journal` before they are counted. The
/// per-cell fates come back in grid order regardless of scheduling, so
/// a deterministic grid yields a byte-identical report at any thread
/// count.
///
/// `telemetry`, when present, receives the full cell lifecycle feed
/// (registration, running/retrying, terminal states, chaos hits, engine
/// chunks). The feed is strictly passive: fates, rows, journal bytes,
/// and report bytes are identical with telemetry on or off.
pub fn run_sweep(
    cells: &[Cell],
    prior: &BTreeMap<u64, CellOutcome>,
    cfg: &ExecConfig,
    journal: Option<&mut Journal>,
    cancel: Option<&AtomicBool>,
    telemetry: Option<&RunStatus>,
) -> SweepResult {
    if let Some(t) = telemetry {
        for cell in cells {
            t.register_cell(&cell.key());
        }
    }
    let fates: Vec<Mutex<Option<CellFate>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let mut reused = 0u64;
    let mut pending = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        match prior.get(&cell.digest()) {
            Some(CellOutcome::Done(row)) => {
                *lock_clean(&fates[i]) = Some(CellFate::Done(*row));
                reused += 1;
                if let Some(t) = telemetry {
                    t.reuse_cell(&cell.key(), false);
                }
            }
            Some(CellOutcome::Quarantined { attempts, error }) => {
                *lock_clean(&fates[i]) = Some(CellFate::Quarantined {
                    attempts: *attempts,
                    error: error.clone(),
                });
                reused += 1;
                if let Some(t) = telemetry {
                    t.reuse_cell(&cell.key(), true);
                }
            }
            None => pending.push(i),
        }
    }
    let executed = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let journal = Mutex::new(journal);
    let journal_error: Mutex<Option<JournalError>> = Mutex::new(None);
    let workers = match cfg.threads {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    }
    .min(pending.len().max(1));
    if let Some(t) = telemetry {
        t.set_workers(workers as u64);
    }
    let mut worker_deaths = 0u64;
    let wall_hist = Mutex::new(Histogram::new());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Per-worker wall-time histogram, merged once at
                    // worker exit so the hot loop stays lock-free.
                    let mut local_hist = Histogram::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = pending.get(slot) else { break };
                        let cell = &cells[i];
                        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                            *lock_clean(&fates[i]) = Some(CellFate::Skipped);
                            if let Some(t) = telemetry {
                                t.cell_skipped(&cell.key());
                            }
                            continue;
                        }
                        let started = std::time::Instant::now();
                        let (fate, attempts) = supervise_cell(cell, cfg, cancel, telemetry);
                        retries.fetch_add(u64::from(attempts.saturating_sub(1)), Ordering::Relaxed);
                        let record = match &fate {
                            CellFate::Done(row) => Some(CellOutcome::Done(*row)),
                            CellFate::Quarantined { attempts, error } => {
                                Some(CellOutcome::Quarantined {
                                    attempts: *attempts,
                                    error: error.clone(),
                                })
                            }
                            CellFate::Skipped => None,
                        };
                        if let Some(outcome) = record {
                            let wall_ms =
                                u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
                            local_hist.record(wall_ms);
                            executed.fetch_add(1, Ordering::Relaxed);
                            if let Some(j) = lock_clean(&journal).as_deref_mut() {
                                if let Err(e) = j.append(cell.digest(), &outcome) {
                                    lock_clean(&journal_error).get_or_insert(e);
                                }
                            }
                        }
                        if let Some(t) = telemetry {
                            match &fate {
                                CellFate::Done(_) => t.cell_done(&cell.key()),
                                CellFate::Quarantined { attempts, error } => {
                                    t.cell_quarantined(&cell.key(), *attempts, error);
                                }
                                CellFate::Skipped => t.cell_skipped(&cell.key()),
                            }
                        }
                        *lock_clean(&fates[i]) = Some(fate);
                    }
                    lock_clean(&wall_hist).merge(&local_hist);
                })
            })
            .collect();
        for h in handles {
            if h.join().is_err() {
                // The per-attempt unwind guard makes this unreachable in
                // practice; degrade instead of aborting if it happens.
                worker_deaths += 1;
            }
        }
    });
    let cells_out = cells
        .iter()
        .zip(fates)
        .map(|(cell, fate)| {
            let fate = match fate.into_inner() {
                Ok(f) => f,
                Err(poisoned) => poisoned.into_inner(),
            };
            (*cell, fate.unwrap_or(CellFate::Skipped))
        })
        .collect();
    SweepResult {
        cells: cells_out,
        executed: executed.into_inner(),
        reused,
        retries: retries.into_inner(),
        journal_error: journal_error
            .into_inner()
            .unwrap_or_else(|p| p.into_inner()),
        worker_deaths,
        wall_hist: wall_hist.into_inner().unwrap_or_else(|p| p.into_inner()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use pim_fault::chaos::ChaosConfig;

    fn smoke_spec(benches: &str) -> SweepSpec {
        SweepSpec::parse(&format!(
            "protocols=pim\nbenches={benches}\nscales=smoke\npes=2\nbackoff=1\n"
        ))
        .unwrap()
    }

    fn cfg(max_attempts: u32) -> ExecConfig {
        ExecConfig {
            threads: 2,
            max_attempts,
            timeout_secs: None,
            backoff_ms: 1,
            chaos: None,
        }
    }

    #[test]
    fn clean_cells_complete_and_count_as_executed() {
        let cells = smoke_spec("tri,semi").cells();
        let result = run_sweep(&cells, &BTreeMap::new(), &cfg(2), None, None, None);
        assert_eq!(result.executed, 2);
        assert_eq!(result.reused, 0);
        assert_eq!(result.retries, 0);
        assert!(!result.degraded());
        for (cell, fate) in &result.cells {
            match fate {
                CellFate::Done(row) => assert!(row.makespan > 0, "{}", cell.key()),
                other => panic!("{}: {other:?}", cell.key()),
            }
        }
    }

    #[test]
    fn poison_cells_quarantine_while_the_rest_complete() {
        let cells = smoke_spec("tri,poison,semi").cells();
        let result = run_sweep(&cells, &BTreeMap::new(), &cfg(3), None, None, None);
        assert!(result.degraded());
        assert_eq!(result.retries, 2); // poison consumed its whole budget
        let fates: Vec<&CellFate> = result.cells.iter().map(|(_, f)| f).collect();
        assert!(matches!(fates[0], CellFate::Done(_)));
        assert!(matches!(fates[2], CellFate::Done(_)));
        match fates[1] {
            CellFate::Quarantined { attempts, error } => {
                assert_eq!(*attempts, 3);
                assert!(error.contains("poison cell"), "{error}");
            }
            other => panic!("poison cell: {other:?}"),
        }
    }

    #[test]
    fn prior_outcomes_are_served_without_execution() {
        let cells = smoke_spec("tri,semi").cells();
        let first = run_sweep(&cells, &BTreeMap::new(), &cfg(2), None, None, None);
        let prior: BTreeMap<u64, CellOutcome> = first
            .cells
            .iter()
            .filter_map(|(cell, fate)| match fate {
                CellFate::Done(row) => Some((cell.digest(), CellOutcome::Done(*row))),
                _ => None,
            })
            .collect();
        let second = run_sweep(&cells, &prior, &cfg(2), None, None, None);
        assert_eq!(second.executed, 0);
        assert_eq!(second.reused, 2);
        assert_eq!(
            first.cells.iter().map(|(_, f)| f).collect::<Vec<_>>(),
            second.cells.iter().map(|(_, f)| f).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chaos_converges_to_the_undisturbed_result() {
        let cells = smoke_spec("tri,semi,poison").cells();
        let clean = run_sweep(&cells, &BTreeMap::new(), &cfg(3), None, None, None);
        for seed in [1u64, 2] {
            let chaos = ChaosPlan::new(ChaosConfig {
                seed,
                kill_ppm: 600_000,
                delay_ppm: 300_000,
                max_delay_ms: 3,
            });
            let chaotic = run_sweep(
                &cells,
                &BTreeMap::new(),
                &ExecConfig {
                    chaos: Some(chaos),
                    ..cfg(3)
                },
                None,
                None,
                None,
            );
            // Fates are identical; only retry/wall accounting may differ.
            assert_eq!(
                clean.cells.iter().map(|(_, f)| f).collect::<Vec<_>>(),
                chaotic.cells.iter().map(|(_, f)| f).collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn raised_cancel_flag_skips_pending_cells() {
        let cells = smoke_spec("tri,semi").cells();
        let cancel = AtomicBool::new(true);
        let result = run_sweep(&cells, &BTreeMap::new(), &cfg(2), None, Some(&cancel), None);
        assert_eq!(result.executed, 0);
        assert!(result
            .cells
            .iter()
            .all(|(_, f)| matches!(f, CellFate::Skipped)));
        assert!(result.degraded());
    }

    #[test]
    fn backoff_is_pure_bounded_and_grows() {
        let a = backoff_delay_ms(25, 42, 0);
        assert_eq!(a, backoff_delay_ms(25, 42, 0));
        assert!(a >= 25);
        assert!(backoff_delay_ms(25, 42, 3) >= backoff_delay_ms(25, 42, 0));
        assert!(backoff_delay_ms(1_000_000, 42, 31) <= 5_000);
        assert_eq!(backoff_delay_ms(0, 42, 0), 0);
    }
}
