//! The `pim-sweep/v1` report document.
//!
//! One JSON document enumerating the fate of every cell in grid order.
//! Everything outside the `provenance` block is a pure function of the
//! sweep spec and the (deterministic) simulations, so reports are
//! byte-identical across thread counts, journal resume, and `--chaos`
//! runs. All host-dependent accounting — cells executed vs served from
//! the journal, retries consumed, wall time, worker count — lives in
//! `provenance`, the one block `pimtrace diff` ignores.

use pim_obs::{Histogram, Json};

use crate::exec::{CellFate, SweepResult};
use crate::journal::CellRow;
use crate::spec::Cell;

/// The schema identifier of sweep reports.
pub const SCHEMA: &str = "pim-sweep/v1";

/// Host-side accounting for the `provenance` block: legitimately
/// different between an undisturbed run and its resumed or chaos-tested
/// twin. Reports are compared modulo this block.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    /// Cells executed by this invocation.
    pub executed: u64,
    /// Cells served from the journal.
    pub reused: u64,
    /// Extra attempts consumed beyond each cell's first.
    pub retries: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Whether a chaos plan was active.
    pub chaos: bool,
    /// Whether the run resumed from a non-empty journal.
    pub resumed: bool,
    /// Whether the run was interrupted (SIGINT drain).
    pub interrupted: bool,
    /// Wall-clock time of this invocation, milliseconds.
    pub wall_ms: u64,
    /// Wall milliseconds per executed cell, merged across workers —
    /// host timing, so provenance-only.
    pub cell_wall_ms: Histogram,
}

/// The provenance rendering of a wall-time histogram: summary stats
/// plus the nonzero log2 buckets as `[upper_bound_ms, count]` pairs.
fn hist_json(h: &Histogram) -> Json {
    Json::obj([
        ("count", Json::from(h.count())),
        ("sum_ms", Json::from(h.sum())),
        ("min_ms", h.min().map_or(Json::Null, Json::from)),
        ("max_ms", h.max().map_or(Json::Null, Json::from)),
        ("p50_ms", Json::from(h.percentile(50.0))),
        ("p99_ms", Json::from(h.percentile(99.0))),
        (
            "buckets",
            Json::arr(
                h.nonzero_buckets()
                    .map(|(upper, count)| Json::arr([Json::from(upper), Json::from(count)])),
            ),
        ),
    ])
}

fn row_json(row: &CellRow) -> [(&'static str, Json); 8] {
    [
        ("reductions", Json::from(row.reductions)),
        ("suspensions", Json::from(row.suspensions)),
        ("references", Json::from(row.references)),
        ("bus_cycles_total", Json::from(row.bus_cycles)),
        ("lookups", Json::from(row.lookups)),
        ("hits", Json::from(row.hits)),
        ("lr_total", Json::from(row.lr_total)),
        ("makespan_cycles", Json::from(row.makespan)),
    ]
}

fn cell_json(cell: &Cell, fate: &CellFate) -> Json {
    let mut doc = Json::obj([
        ("protocol", Json::from(cell.protocol.name())),
        ("bench", Json::from(cell.bench.name())),
        ("scale", Json::from(cell.scale.name())),
        ("pes", Json::from(u64::from(cell.pes))),
        ("block_words", Json::from(cell.block_words)),
        ("digest", Json::from(format!("{:#018x}", cell.digest()))),
    ]);
    match fate {
        CellFate::Done(row) => {
            doc.push("status", Json::from("done"));
            for (k, v) in row_json(row) {
                doc.push(k, v);
            }
        }
        CellFate::Quarantined { attempts, error } => {
            doc.push("status", Json::from("quarantined"));
            doc.push("attempts", Json::from(u64::from(*attempts)));
            doc.push("error", Json::from(error.as_str()));
        }
        CellFate::Skipped => doc.push("status", Json::from("skipped")),
    }
    doc
}

/// Renders the full report document.
pub fn render(spec_digest: u64, result: &SweepResult, prov: &Provenance) -> Json {
    let mut done = 0u64;
    let mut quarantined = 0u64;
    let mut skipped = 0u64;
    for (_, fate) in &result.cells {
        match fate {
            CellFate::Done(_) => done += 1,
            CellFate::Quarantined { .. } => quarantined += 1,
            CellFate::Skipped => skipped += 1,
        }
    }
    let mut doc = Json::obj([
        ("schema", Json::from(SCHEMA)),
        ("tool", Json::from("sweeprun")),
        ("spec_digest", Json::from(format!("{spec_digest:#018x}"))),
        (
            "cells",
            Json::arr(result.cells.iter().map(|(c, f)| cell_json(c, f))),
        ),
        (
            "summary",
            Json::obj([
                ("total", Json::from(result.cells.len())),
                ("done", Json::from(done)),
                ("quarantined", Json::from(quarantined)),
                ("skipped", Json::from(skipped)),
            ]),
        ),
    ]);
    doc.push(
        "provenance",
        Json::obj([
            ("executed", Json::from(prov.executed)),
            ("reused", Json::from(prov.reused)),
            ("retries", Json::from(prov.retries)),
            ("threads", Json::from(prov.threads)),
            ("chaos", Json::from(prov.chaos)),
            ("resumed", Json::from(prov.resumed)),
            ("interrupted", Json::from(prov.interrupted)),
            ("wall_ms", Json::from(prov.wall_ms)),
            ("cell_wall_ms", hist_json(&prov.cell_wall_ms)),
        ]),
    );
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    #[test]
    fn report_shape_is_pinned_and_provenance_is_last() {
        let spec = SweepSpec::parse("protocols=pim\nbenches=tri\nscales=smoke\npes=1\n").unwrap();
        let cells = spec.cells();
        let result = SweepResult {
            cells: vec![(
                cells[0],
                CellFate::Quarantined {
                    attempts: 3,
                    error: "boom".into(),
                },
            )],
            executed: 1,
            reused: 0,
            retries: 2,
            journal_error: None,
            worker_deaths: 0,
            wall_hist: Histogram::new(),
        };
        let s = render(spec.digest(), &result, &Provenance::default()).to_string_pretty();
        assert!(s.contains(r#""schema": "pim-sweep/v1""#), "{s}");
        assert!(s.contains(r#""status": "quarantined""#), "{s}");
        assert!(s.contains(r#""quarantined": 1"#), "{s}");
        // Provenance is the final block so diff tooling can strip it.
        let prov_at = s.find(r#""provenance""#).unwrap();
        let cells_at = s.find(r#""cells""#).unwrap();
        assert!(prov_at > cells_at);
    }

    #[test]
    fn provenance_carries_the_cell_wall_time_histogram() {
        let mut hist = Histogram::new();
        hist.record(12);
        hist.record(700);
        let prov = Provenance {
            cell_wall_ms: hist,
            ..Provenance::default()
        };
        let spec = SweepSpec::parse("protocols=pim\nbenches=tri\nscales=smoke\npes=1\n").unwrap();
        let result = SweepResult {
            cells: Vec::new(),
            executed: 0,
            reused: 0,
            retries: 0,
            journal_error: None,
            worker_deaths: 0,
            wall_hist: Histogram::new(),
        };
        let s = render(spec.digest(), &result, &prov).to_string_pretty();
        assert!(s.contains(r#""cell_wall_ms""#), "{s}");
        assert!(s.contains(r#""count": 2"#), "{s}");
        assert!(s.contains(r#""sum_ms": 712"#), "{s}");
        // The histogram stays inside the provenance block.
        let prov_at = s.find(r#""provenance""#).unwrap();
        assert!(s.find(r#""cell_wall_ms""#).unwrap() > prov_at);
    }
}
