//! The crash-safe sweep journal: an append-only write-ahead log of cell
//! outcomes.
//!
//! # File format (`pim-swl/v1`)
//!
//! ```text
//! header:  "pim-swl/v1\n"  (11 bytes)
//!          spec digest     (u64 LE — the grid digest of the sweep spec)
//! record:  payload length  (u32 LE)
//!          payload         (length bytes)
//!          checksum        (u64 LE — FNV-1a of the payload)
//! ```
//!
//! The payload is a [`pim_ckpt`] field stream: a one-byte outcome tag,
//! the cell's content digest, then the outcome body (the result row for
//! a completed cell, the attempt count and final error for a
//! quarantined one).
//!
//! # Durability contract
//!
//! Appends are flushed and fsync'd before the executor considers a cell
//! recorded, so a `kill -9` loses at most the record being written.
//! Replay is *torn-tail tolerant*: the reader accepts the longest valid
//! prefix of records and silently discards a trailing partial or
//! corrupt record (resume truncates it before appending). A journal
//! whose *header* is wrong is a different matter — a bad magic or a
//! spec-digest mismatch means the file is not a journal for this sweep,
//! and the reader refuses it with a named error instead of guessing.
//!
//! Duplicate records for one cell are legal (a crash can land between
//! the append and the executor's bookkeeping); replay keeps the last
//! record per cell, so nothing is ever double-counted.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::path::Path;

use pim_ckpt::{fnv1a64, vfs, Reader, Writer};

/// Magic + version prefix of every sweep journal.
pub const MAGIC: &[u8; 11] = b"pim-swl/v1\n";

/// Guard against absurd lengths from corrupt records: no legitimate
/// payload (a stats row or an error string) approaches this.
const MAX_PAYLOAD: u32 = 1 << 20;

const TAG_DONE: u8 = 1;
const TAG_QUARANTINED: u8 = 2;

/// The deterministic result row of one completed cell — everything the
/// report renders for it. Stored in the journal so resumed sweeps can
/// serve the cell without re-running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRow {
    /// KL1 reductions.
    pub reductions: u64,
    /// Goal suspensions.
    pub suspensions: u64,
    /// Memory references.
    pub references: u64,
    /// Total bus cycles.
    pub bus_cycles: u64,
    /// Cache lookups.
    pub lookups: u64,
    /// Cache hits.
    pub hits: u64,
    /// Completed lock reads.
    pub lr_total: u64,
    /// Simulated completion time in cycles.
    pub makespan: u64,
}

/// The journaled fate of one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The cell completed and validated; its result row is durable.
    Done(CellRow),
    /// The cell failed every permitted attempt and was quarantined so
    /// the rest of the sweep could proceed.
    Quarantined {
        /// Attempts consumed (the spec's retry budget).
        attempts: u32,
        /// The final attempt's failure, rendered for the report.
        error: String,
    },
}

/// Why a journal could not be opened or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The file exists but does not start with the `pim-swl/v1` magic —
    /// it is not a sweep journal (or its header was corrupted).
    BadMagic,
    /// The journal belongs to a different sweep grid.
    SpecMismatch {
        /// The digest recorded in the journal header.
        found: u64,
        /// The digest of the spec being run.
        want: u64,
    },
    /// An I/O failure reading, writing, or syncing the journal, with
    /// the journal path and the failing syscall named — so a degraded
    /// sweep's diagnostic says *which* file and *which* primitive
    /// (open/append/fsync/truncate) the disk refused, not just "I/O
    /// error".
    Io {
        /// The journal path the failure struck.
        path: String,
        /// The failing syscall, by name (`open`, `read`, `append`,
        /// `fsync`, `truncate`, `seek`).
        syscall: &'static str,
        /// The underlying error text.
        detail: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::BadMagic => {
                write!(f, "not a pim-swl/v1 sweep journal (bad magic)")
            }
            JournalError::SpecMismatch { found, want } => write!(
                f,
                "journal belongs to a different sweep \
                 (spec digest {found:#018x}, this sweep is {want:#018x})"
            ),
            JournalError::Io {
                path,
                syscall,
                detail,
            } => write!(f, "journal `{path}`: {syscall} failed: {detail}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, syscall: &'static str, e: std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.display().to_string(),
        syscall,
        detail: e.to_string(),
    }
}

fn encode_record(cell_digest: u64, outcome: &CellOutcome) -> Vec<u8> {
    let mut w = Writer::new();
    match outcome {
        CellOutcome::Done(row) => {
            w.put_u8(TAG_DONE);
            w.put_u64(cell_digest);
            w.put_u64(row.reductions);
            w.put_u64(row.suspensions);
            w.put_u64(row.references);
            w.put_u64(row.bus_cycles);
            w.put_u64(row.lookups);
            w.put_u64(row.hits);
            w.put_u64(row.lr_total);
            w.put_u64(row.makespan);
        }
        CellOutcome::Quarantined { attempts, error } => {
            w.put_u8(TAG_QUARANTINED);
            w.put_u64(cell_digest);
            w.put_u32(*attempts);
            w.put_str(error);
        }
    }
    let payload = w.payload();
    let mut rec = Vec::with_capacity(payload.len() + 12);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(payload);
    rec.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    rec
}

fn decode_payload(payload: &[u8]) -> Option<(u64, CellOutcome)> {
    let mut r = Reader::new(payload);
    let tag = r.get_u8().ok()?;
    let digest = r.get_u64().ok()?;
    let outcome = match tag {
        TAG_DONE => CellOutcome::Done(CellRow {
            reductions: r.get_u64().ok()?,
            suspensions: r.get_u64().ok()?,
            references: r.get_u64().ok()?,
            bus_cycles: r.get_u64().ok()?,
            lookups: r.get_u64().ok()?,
            hits: r.get_u64().ok()?,
            lr_total: r.get_u64().ok()?,
            makespan: r.get_u64().ok()?,
        }),
        TAG_QUARANTINED => CellOutcome::Quarantined {
            attempts: r.get_u32().ok()?,
            error: r.get_str().ok()?.to_string(),
        },
        _ => return None,
    };
    r.expect_end().ok()?;
    Some((digest, outcome))
}

/// What a replay recovered from journal bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Last-wins outcome per cell digest.
    pub outcomes: BTreeMap<u64, CellOutcome>,
    /// Raw records accepted (counts duplicates).
    pub records: u64,
    /// Length of the valid prefix, including the header. Anything past
    /// this is a torn or corrupt tail to be truncated before appending.
    pub valid_len: u64,
    /// Whether a torn/corrupt tail was discarded.
    pub torn: bool,
}

const HEADER_LEN: usize = MAGIC.len() + 8;

/// Replays journal bytes without touching the filesystem.
///
/// Header problems (bad magic, wrong spec digest) are refused with a
/// named error — with one deliberate exception: bytes that are a strict
/// *prefix* of a valid header are what a crash during journal creation
/// leaves behind, and replay treats them as an empty journal to be
/// rewritten. Record-level problems (truncation, a flipped bit, a torn
/// final record, a bogus length) end the valid prefix: everything
/// before them is kept, everything after is reported torn.
pub fn replay_bytes(bytes: &[u8], spec_digest: u64) -> Result<Replay, JournalError> {
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&spec_digest.to_le_bytes());
    if bytes.len() < HEADER_LEN {
        // A crash between create and header fsync leaves a prefix of
        // the header; anything else this short is not a journal.
        if header.starts_with(bytes) {
            return Ok(Replay {
                outcomes: BTreeMap::new(),
                records: 0,
                valid_len: 0,
                torn: !bytes.is_empty(),
            });
        }
        return Err(JournalError::BadMagic);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let mut digest_bytes = [0u8; 8];
    digest_bytes.copy_from_slice(&bytes[MAGIC.len()..HEADER_LEN]);
    let found = u64::from_le_bytes(digest_bytes);
    if found != spec_digest {
        return Err(JournalError::SpecMismatch {
            found,
            want: spec_digest,
        });
    }
    let mut outcomes = BTreeMap::new();
    let mut records = 0u64;
    let mut pos = HEADER_LEN;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return Ok(Replay {
                outcomes,
                records,
                valid_len: pos as u64,
                torn: false,
            });
        }
        let torn = |outcomes, records| {
            Ok(Replay {
                outcomes,
                records,
                valid_len: pos as u64,
                torn: true,
            })
        };
        if rest.len() < 4 {
            return torn(outcomes, records);
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&rest[..4]);
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_PAYLOAD || rest.len() < 4 + len as usize + 8 {
            return torn(outcomes, records);
        }
        let payload = &rest[4..4 + len as usize];
        let mut sum_bytes = [0u8; 8];
        sum_bytes.copy_from_slice(&rest[4 + len as usize..4 + len as usize + 8]);
        if u64::from_le_bytes(sum_bytes) != fnv1a64(payload) {
            return torn(outcomes, records);
        }
        let Some((digest, outcome)) = decode_payload(payload) else {
            return torn(outcomes, records);
        };
        outcomes.insert(digest, outcome);
        records += 1;
        pos += 4 + len as usize + 8;
    }
}

/// An open sweep journal, positioned for appends.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: std::path::PathBuf,
    /// Length of the acknowledged prefix: header plus every record
    /// whose append *and* fsync returned. A faulted append is rolled
    /// back to this offset before being retried, so the file only ever
    /// grows by whole acknowledged records.
    len: u64,
}

impl Journal {
    /// Opens (or creates) the journal for the sweep with grid digest
    /// `spec_digest`, replaying whatever a previous run recorded.
    ///
    /// A torn tail — including a half-written header from a crash
    /// during creation — is truncated away; a journal for a *different*
    /// sweep, or a file that is not a journal at all, is refused with a
    /// named error rather than overwritten. All reads and writes flow
    /// through [`pim_ckpt::vfs`] as [`vfs::PathClass::Journal`], so
    /// `--io-chaos` can torture them.
    pub fn open(path: &Path, spec_digest: u64) -> Result<(Journal, Replay), JournalError> {
        let bytes = match vfs::read_file(vfs::PathClass::Journal, path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(path, "read", e)),
        };
        let replay = replay_bytes(&bytes, spec_digest)?;
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        file.set_len(replay.valid_len)
            .map_err(|e| io_err(path, "truncate", e))?;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(replay.valid_len))
            .map_err(|e| io_err(path, "seek", e))?;
        file.sync_data().map_err(|e| io_err(path, "fsync", e))?;
        let mut len = replay.valid_len;
        if replay.valid_len == 0 {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&spec_digest.to_le_bytes());
            vfs::append_sync(vfs::PathClass::Journal, &mut file, 0, &header)
                .map_err(|e| io_err(path, e.syscall, e.error))?;
            len = HEADER_LEN as u64;
        }
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                len,
            },
            replay,
        ))
    }

    /// Durably appends one cell outcome: the record is written, flushed,
    /// and fsync'd before this returns, so a subsequent `kill -9`
    /// cannot lose it. Under `--io-chaos`, a faulted attempt — even one
    /// whose bytes landed before the fsync was refused — is truncated
    /// back out and retried (bounded), so no torn or unacknowledged
    /// record ever survives in the file.
    pub fn append(&mut self, cell_digest: u64, outcome: &CellOutcome) -> Result<(), JournalError> {
        let rec = encode_record(cell_digest, outcome);
        vfs::append_sync(vfs::PathClass::Journal, &mut self.file, self.len, &rec)
            .map_err(|e| io_err(&self.path, e.syscall, e.error))?;
        self.len += rec.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(seed: u64) -> CellRow {
        CellRow {
            reductions: seed,
            suspensions: seed + 1,
            references: seed + 2,
            bus_cycles: seed + 3,
            lookups: seed + 4,
            hits: seed + 5,
            lr_total: seed + 6,
            makespan: seed + 7,
        }
    }

    fn journal_bytes(spec: u64, recs: &[(u64, CellOutcome)]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&spec.to_le_bytes());
        for (digest, outcome) in recs {
            bytes.extend_from_slice(&encode_record(*digest, outcome));
        }
        bytes
    }

    #[test]
    fn outcomes_round_trip_through_records() {
        let recs = vec![
            (1, CellOutcome::Done(row(100))),
            (
                2,
                CellOutcome::Quarantined {
                    attempts: 3,
                    error: "program failed: poison".into(),
                },
            ),
        ];
        let bytes = journal_bytes(7, &recs);
        let replay = replay_bytes(&bytes, 7).unwrap();
        assert!(!replay.torn);
        assert_eq!(replay.records, 2);
        assert_eq!(replay.valid_len, bytes.len() as u64);
        assert_eq!(replay.outcomes[&1], recs[0].1);
        assert_eq!(replay.outcomes[&2], recs[1].1);
    }

    #[test]
    fn duplicate_cells_keep_the_last_record_and_never_double_count() {
        let bytes = journal_bytes(
            7,
            &[
                (1, CellOutcome::Done(row(100))),
                (1, CellOutcome::Done(row(200))),
            ],
        );
        let replay = replay_bytes(&bytes, 7).unwrap();
        assert_eq!(replay.records, 2);
        assert_eq!(replay.outcomes.len(), 1);
        assert_eq!(replay.outcomes[&1], CellOutcome::Done(row(200)));
    }

    #[test]
    fn header_problems_are_refused_not_recovered() {
        assert_eq!(
            replay_bytes(b"not a journal at all", 7),
            Err(JournalError::BadMagic)
        );
        let bytes = journal_bytes(8, &[]);
        assert_eq!(
            replay_bytes(&bytes, 7),
            Err(JournalError::SpecMismatch { found: 8, want: 7 })
        );
        // A flipped bit in the magic is corruption, not a torn tail.
        let mut bytes = journal_bytes(7, &[(1, CellOutcome::Done(row(1)))]);
        bytes[0] ^= 0x20;
        assert_eq!(replay_bytes(&bytes, 7), Err(JournalError::BadMagic));
    }

    #[test]
    fn header_prefix_from_a_creation_crash_reads_as_empty() {
        let full = journal_bytes(7, &[]);
        for cut in 0..full.len() {
            let replay = replay_bytes(&full[..cut], 7).unwrap();
            assert_eq!(replay.outcomes.len(), 0, "cut={cut}");
            assert_eq!(replay.valid_len, 0, "cut={cut}");
        }
    }

    #[test]
    fn every_truncation_recovers_the_longest_valid_prefix() {
        let recs: Vec<(u64, CellOutcome)> = (0..4u64)
            .map(|i| (i, CellOutcome::Done(row(i * 10))))
            .collect();
        let full = journal_bytes(7, &recs);
        let full_replay = replay_bytes(&full, 7).unwrap();
        let rec_len = (full.len() - HEADER_LEN) / 4;
        for cut in HEADER_LEN..full.len() {
            let replay = replay_bytes(&full[..cut], 7).unwrap();
            let whole_records = (cut - HEADER_LEN) / rec_len;
            assert_eq!(replay.records, whole_records as u64, "cut={cut}");
            assert_eq!(
                replay.valid_len as usize,
                HEADER_LEN + whole_records * rec_len,
                "cut={cut}"
            );
            assert_eq!(replay.torn, cut != HEADER_LEN + whole_records * rec_len);
            for (digest, outcome) in &replay.outcomes {
                assert_eq!(outcome, &full_replay.outcomes[digest]);
            }
        }
    }

    #[test]
    fn bit_flips_in_records_never_panic_and_keep_the_prefix() {
        let recs: Vec<(u64, CellOutcome)> = (0..3u64)
            .map(|i| {
                (
                    i,
                    if i == 1 {
                        CellOutcome::Quarantined {
                            attempts: 2,
                            error: "boom".into(),
                        }
                    } else {
                        CellOutcome::Done(row(i))
                    },
                )
            })
            .collect();
        let full = journal_bytes(7, &recs);
        for byte in HEADER_LEN..full.len() {
            for bit in 0..8 {
                let mut bytes = full.clone();
                bytes[byte] ^= 1 << bit;
                let replay = replay_bytes(&bytes, 7)
                    .unwrap_or_else(|e| panic!("byte {byte} bit {bit}: refused: {e}"));
                // The flip can only shorten the valid prefix, never
                // invent outcomes that were not written.
                assert!(replay.records <= 3, "byte {byte} bit {bit}");
                for (digest, outcome) in &replay.outcomes {
                    if !replay.torn && replay.records == 3 {
                        assert_eq!(outcome, &replay_bytes(&full, 7).unwrap().outcomes[digest]);
                    }
                }
            }
        }
    }

    #[test]
    fn open_truncates_torn_tails_and_appends_after_them() {
        let dir = std::env::temp_dir().join(format!("pim-swl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.swl");
        let (mut j, replay) = Journal::open(&path, 7).unwrap();
        assert_eq!(replay.records, 0);
        j.append(1, &CellOutcome::Done(row(10))).unwrap();
        j.append(2, &CellOutcome::Done(row(20))).unwrap();
        drop(j);
        // Tear the final record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut j, replay) = Journal::open(&path, 7).unwrap();
        assert!(replay.torn);
        assert_eq!(replay.outcomes.len(), 1);
        j.append(3, &CellOutcome::Done(row(30))).unwrap();
        drop(j);
        let (_, replay) = Journal::open(&path, 7).unwrap();
        assert!(!replay.torn);
        assert_eq!(replay.outcomes.len(), 2);
        assert_eq!(replay.outcomes[&3], CellOutcome::Done(row(30)));
        // A different spec digest refuses the same file.
        let err = Journal::open(&path, 8).unwrap_err();
        assert!(matches!(
            err,
            JournalError::SpecMismatch { found: 7, want: 8 }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
