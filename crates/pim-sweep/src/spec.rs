//! Sweep specs: a declarative grid of experiment cells.
//!
//! A spec is a line-oriented text file of `key = value[,value...]`
//! axes. The grid is the cross product of the axes, expanded in a fixed
//! order (protocol, then benchmark, then scale, then PEs, then block
//! words), so two parses of the same spec always enumerate the same
//! cells in the same order. Each cell has a canonical key string and an
//! FNV-1a content digest; the digest keys journal records, chaos
//! decisions, and backoff jitter, so everything downstream is
//! content-addressed by *what the cell computes*, not by its position
//! in the grid.
//!
//! ```text
//! # axes (required)
//! protocols = pim, illinois
//! benches   = tri, semi
//! scales    = smoke
//! pes       = 1, 2, 4
//! # axes (optional, default 4)
//! blocks    = 4
//! # supervision policy (optional)
//! timeout   = 30      # per-cell wall-clock seconds
//! retries   = 3       # attempts per cell before quarantine
//! backoff   = 50      # base backoff between attempts, milliseconds
//! ```
//!
//! The special benchmark name `poison` expands to a cell that panics
//! deterministically on every attempt — the self-test target for the
//! retry/quarantine machinery.

use pim_cache::SystemConfig;
use pim_ckpt::fnv1a64;
use workloads::runner::Protocol;
use workloads::{Bench, Scale};

/// A benchmark axis value: a real benchmark, or the `poison` self-test
/// cell that panics deterministically on every attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellBench {
    /// One of the suite's benchmarks.
    Real(Bench),
    /// The self-test cell: panics on every attempt, exercising the
    /// supervisor's retry and quarantine paths.
    Poison,
}

impl CellBench {
    /// The axis value's name in specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            CellBench::Real(b) => b.name(),
            CellBench::Poison => "poison",
        }
    }

    /// Parses an axis value (case-insensitive).
    pub fn from_name(name: &str) -> Option<CellBench> {
        if name.eq_ignore_ascii_case("poison") {
            return Some(CellBench::Poison);
        }
        Bench::from_name(name).map(CellBench::Real)
    }
}

/// One experiment cell of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Cache protocol.
    pub protocol: Protocol,
    /// Benchmark (or the poison self-test).
    pub bench: CellBench,
    /// Problem scale.
    pub scale: Scale,
    /// PE count.
    pub pes: u32,
    /// Cache block size in words.
    pub block_words: u64,
}

impl Cell {
    /// The cell's canonical key string — the identity everything
    /// content-addressed (journal records, chaos, backoff jitter) hangs
    /// off. Two cells with the same key compute the same result.
    pub fn key(&self) -> String {
        format!(
            "proto={} bench={} scale={} pes={} block={}",
            self.protocol.name(),
            self.bench.name(),
            self.scale.name(),
            self.pes,
            self.block_words
        )
    }

    /// FNV-1a digest of [`Cell::key`].
    pub fn digest(&self) -> u64 {
        fnv1a64(self.key().as_bytes())
    }

    /// The simulator configuration this cell runs under.
    pub fn config(&self) -> SystemConfig {
        let mut config = SystemConfig {
            pes: self.pes,
            ..SystemConfig::default()
        };
        config.geometry.block_words = self.block_words;
        config
    }
}

/// A parsed sweep spec: the grid axes plus the supervision policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Protocol axis.
    pub protocols: Vec<Protocol>,
    /// Benchmark axis.
    pub benches: Vec<CellBench>,
    /// Scale axis.
    pub scales: Vec<Scale>,
    /// PE-count axis.
    pub pes: Vec<u32>,
    /// Block-size axis (words).
    pub blocks: Vec<u64>,
    /// Per-cell wall-clock timeout in seconds (`None` = unbounded).
    pub timeout_secs: Option<u64>,
    /// Attempts per cell before quarantine (≥ 1).
    pub max_attempts: u32,
    /// Base backoff between attempts, in milliseconds.
    pub backoff_ms: u64,
}

/// Default attempts per cell before quarantine.
pub const DEFAULT_ATTEMPTS: u32 = 3;
/// Default base backoff between attempts, in milliseconds.
pub const DEFAULT_BACKOFF_MS: u64 = 25;

impl SweepSpec {
    /// Parses a spec file. Errors name the offending line and key so
    /// callers can forward them verbatim as exit-2 diagnostics.
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let mut protocols = Vec::new();
        let mut benches = Vec::new();
        let mut scales = Vec::new();
        let mut pes = Vec::new();
        let mut blocks = Vec::new();
        let mut timeout_secs = None;
        let mut max_attempts = DEFAULT_ATTEMPTS;
        let mut backoff_ms = DEFAULT_BACKOFF_MS;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = lineno + 1;
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("sweep spec line {lineno}: expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            let values = || value.split(',').map(str::trim).filter(|v| !v.is_empty());
            let one_u64 = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("sweep spec line {lineno}: bad {what} `{value}`"))
            };
            match key {
                "protocols" => {
                    for v in values() {
                        protocols.push(Protocol::from_name(v).ok_or_else(|| {
                            format!("sweep spec line {lineno}: unknown protocol `{v}`")
                        })?);
                    }
                }
                "benches" => {
                    for v in values() {
                        benches.push(CellBench::from_name(v).ok_or_else(|| {
                            format!("sweep spec line {lineno}: unknown benchmark `{v}`")
                        })?);
                    }
                }
                "scales" => {
                    for v in values() {
                        scales.push(Scale::from_name(v).ok_or_else(|| {
                            format!("sweep spec line {lineno}: unknown scale `{v}`")
                        })?);
                    }
                }
                "pes" => {
                    for v in values() {
                        let n: u32 = v
                            .parse()
                            .map_err(|_| format!("sweep spec line {lineno}: bad PE count `{v}`"))?;
                        if n == 0 {
                            return Err(format!("sweep spec line {lineno}: pes must be >= 1"));
                        }
                        pes.push(n);
                    }
                }
                "blocks" => {
                    for v in values() {
                        let n: u64 = v.parse().map_err(|_| {
                            format!("sweep spec line {lineno}: bad block size `{v}`")
                        })?;
                        if n == 0 || !n.is_power_of_two() {
                            return Err(format!(
                                "sweep spec line {lineno}: block size must be a power of two"
                            ));
                        }
                        blocks.push(n);
                    }
                }
                "timeout" => {
                    let secs = one_u64("timeout")?;
                    if secs == 0 {
                        return Err(format!(
                            "sweep spec line {lineno}: timeout must be >= 1 second"
                        ));
                    }
                    timeout_secs = Some(secs);
                }
                "retries" => {
                    let n = one_u64("retry count")?;
                    if n == 0 {
                        return Err(format!("sweep spec line {lineno}: retries must be >= 1"));
                    }
                    max_attempts = u32::try_from(n)
                        .map_err(|_| format!("sweep spec line {lineno}: retries too large"))?;
                }
                "backoff" => backoff_ms = one_u64("backoff")?,
                other => {
                    return Err(format!(
                        "sweep spec line {lineno}: unknown key `{other}` \
                         (accepted: protocols, benches, scales, pes, blocks, \
                         timeout, retries, backoff)"
                    ));
                }
            }
        }
        if blocks.is_empty() {
            blocks.push(4);
        }
        for (axis, empty) in [
            ("protocols", protocols.is_empty()),
            ("benches", benches.is_empty()),
            ("scales", scales.is_empty()),
            ("pes", pes.is_empty()),
        ] {
            if empty {
                return Err(format!("sweep spec is missing the `{axis}` axis"));
            }
        }
        Ok(SweepSpec {
            protocols,
            benches,
            scales,
            pes,
            blocks,
            timeout_secs,
            max_attempts,
            backoff_ms,
        })
    }

    /// Expands the grid in its fixed enumeration order.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for &protocol in &self.protocols {
            for &bench in &self.benches {
                for &scale in &self.scales {
                    for &pes in &self.pes {
                        for &block_words in &self.blocks {
                            cells.push(Cell {
                                protocol,
                                bench,
                                scale,
                                pes,
                                block_words,
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// Digest of the *grid* — the ordered cell keys, not the
    /// supervision policy. Changing timeouts or retry budgets leaves a
    /// journal resumable; changing the grid does not.
    pub fn digest(&self) -> u64 {
        let mut canon = String::new();
        for cell in self.cells() {
            canon.push_str(&cell.key());
            canon.push('\n');
        }
        fnv1a64(canon.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
        # demo sweep\n\
        protocols = pim, illinois\n\
        benches = tri, semi\n\
        scales = smoke\n\
        pes = 1, 2\n\
        timeout = 30\n\
        retries = 2\n";

    #[test]
    fn parses_and_expands_in_grid_order() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        assert_eq!(spec.timeout_secs, Some(30));
        assert_eq!(spec.max_attempts, 2);
        assert_eq!(spec.backoff_ms, DEFAULT_BACKOFF_MS);
        let cells = spec.cells();
        assert_eq!(cells.len(), 8); // 2 protocols x 2 benches x 1 scale x 2 pes
        assert_eq!(
            cells[0].key(),
            "proto=pim bench=Tri scale=smoke pes=1 block=4"
        );
        assert_eq!(
            cells[7].key(),
            "proto=illinois bench=Semi scale=smoke pes=2 block=4"
        );
        // Digests are content-addressed and distinct per cell.
        let digests: std::collections::HashSet<u64> = cells.iter().map(Cell::digest).collect();
        assert_eq!(digests.len(), cells.len());
    }

    #[test]
    fn spec_digest_covers_the_grid_not_the_policy() {
        let a = SweepSpec::parse(SPEC).unwrap();
        let mut b = a.clone();
        b.max_attempts = 5;
        b.timeout_secs = None;
        assert_eq!(a.digest(), b.digest());
        let mut c = a.clone();
        c.pes.push(4);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn diagnostics_name_the_line_and_key() {
        let e = SweepSpec::parse("protocols = mesi\n").unwrap_err();
        assert!(e.contains("line 1") && e.contains("mesi"), "{e}");
        let e = SweepSpec::parse("wat = 1\n").unwrap_err();
        assert!(e.contains("unknown key `wat`"), "{e}");
        let e = SweepSpec::parse("protocols = pim\nbenches = tri\nscales = smoke\n").unwrap_err();
        assert!(e.contains("missing the `pes` axis"), "{e}");
        let e = SweepSpec::parse("blocks = 3\n").unwrap_err();
        assert!(e.contains("power of two"), "{e}");
    }

    #[test]
    fn poison_is_a_bench_axis_value() {
        assert_eq!(CellBench::from_name("poison"), Some(CellBench::Poison));
        assert_eq!(
            CellBench::from_name("Tri"),
            Some(CellBench::Real(Bench::Tri))
        );
        let spec =
            SweepSpec::parse("protocols=pim\nbenches=poison\nscales=smoke\npes=1\n").unwrap();
        assert_eq!(spec.cells()[0].bench, CellBench::Poison);
    }
}
