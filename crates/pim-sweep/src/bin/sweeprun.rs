//! `sweeprun` — supervised execution of a declarative sweep spec.
//!
//! ```text
//! sweeprun --sweep FILE[:retries=N][:timeout=SECS] [--journal FILE]
//!          [--threads N] [--chaos seed=N[,kill=PPM][,delay=PPM][,max_delay_ms=MS]]
//!          [--io-chaos seed=N[,rate=PPM][,kinds=...]]
//!          [--report FILE] [--status FILE[:every=SECS]] [--metrics FILE] [--quiet]
//! ```
//!
//! The spec file declares a grid of cells (see `pim_sweep::spec`); the
//! runner executes them under per-cell timeouts with retry, backoff and
//! quarantine, journaling every completion to `--journal` so a killed
//! sweep resumes exactly. The report (stdout, or `--report FILE`) is
//! byte-identical across thread counts, resume, and chaos, modulo its
//! `provenance` block.
//!
//! `--status` writes a crash-safe `pim-status/v1` snapshot (watch it
//! live with `sweepwatch`), `--metrics` a Prometheus text file;
//! `--quiet` drops the per-cell progress lines but never quarantine or
//! error lines. All telemetry is stderr/side-file only: report,
//! journal, and stdout bytes are identical with telemetry on or off.
//!
//! Exit codes: 0 — every cell done; 1 — degraded (quarantined or
//! skipped cells, journal trouble) or a refused journal; 2 — bad
//! flags or spec; 130 — interrupted (SIGINT), in-flight cells drained
//! to the journal.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::process::exit;
use std::sync::atomic::Ordering;

use pim_fault::chaos::{ChaosConfig, ChaosPlan};
use pim_sweep::report::Provenance;
use pim_sweep::{run_sweep, CellFate, ExecConfig, Journal, SweepSpec};

const USAGE: &str = "usage: sweeprun --sweep FILE[:retries=N][:timeout=SECS] \
                     [--journal FILE] [--threads N] [--chaos SPEC] [--io-chaos SPEC] \
                     [--report FILE] \
                     [--status FILE[:every=SECS]] [--metrics FILE] [--quiet]";

fn fail2(msg: &str) -> ! {
    eprintln!("sweeprun: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let mut sweep_arg: Option<String> = None;
    let mut journal_arg: Option<String> = None;
    let mut report_arg: Option<String> = None;
    let mut status_arg: Option<String> = None;
    let mut metrics_arg: Option<String> = None;
    let mut quiet = false;
    let mut threads: usize = 0;
    let mut chaos: Option<ChaosPlan> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| fail2(&format!("--{flag} needs a value")))
        };
        match arg.as_str() {
            "--sweep" => sweep_arg = Some(next("sweep")),
            "--journal" => journal_arg = Some(next("journal")),
            "--report" => report_arg = Some(next("report")),
            "--status" => status_arg = Some(next("status")),
            "--metrics" => metrics_arg = Some(next("metrics")),
            "--quiet" => quiet = true,
            "--threads" => {
                let v = next("threads");
                threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail2(&format!("bad value `{v}` for --threads")));
            }
            "--chaos" => {
                let v = next("chaos");
                let config = ChaosConfig::parse_spec(&v).unwrap_or_else(|e| fail2(&e));
                chaos = Some(ChaosPlan::new(config));
            }
            "--io-chaos" => {
                let v = next("io-chaos");
                let config =
                    pim_ckpt::vfs::IoChaosConfig::parse_spec(&v).unwrap_or_else(|e| fail2(&e));
                pim_ckpt::vfs::install(config);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail2(&format!("unknown flag `{other}`")),
        }
    }
    let Some(sweep_arg) = sweep_arg else {
        fail2("--sweep is required");
    };
    let sweep_spec = pim_ckpt::spec::parse_file_spec("sweep", &sweep_arg, &["retries", "timeout"])
        .unwrap_or_else(|e| fail2(&e));
    let journal_path = journal_arg.map(|a| {
        pim_ckpt::spec::parse_file_spec("journal", &a, &[])
            .unwrap_or_else(|e| fail2(&e))
            .path
    });
    let text = std::fs::read_to_string(&sweep_spec.path)
        .unwrap_or_else(|e| fail2(&format!("cannot read {}: {e}", sweep_spec.path)));
    let mut spec = SweepSpec::parse(&text).unwrap_or_else(|e| fail2(&e));
    if let Some(n) = sweep_spec
        .get_u64("sweep", "retries")
        .unwrap_or_else(|e| fail2(&e))
    {
        if n == 0 {
            fail2("retries in --sweep must be >= 1");
        }
        spec.max_attempts = u32::try_from(n).unwrap_or(u32::MAX);
    }
    if let Some(secs) = sweep_spec
        .get_u64("sweep", "timeout")
        .unwrap_or_else(|e| fail2(&e))
    {
        if secs == 0 {
            fail2("timeout in --sweep must be >= 1 second");
        }
        spec.timeout_secs = Some(secs);
    }

    let cells = spec.cells();
    let spec_digest = spec.digest();
    let started = std::time::Instant::now();

    // Open (or resume) the journal before any work: a journal for a
    // different sweep, or a file that is not a journal, is refused.
    let mut prior = BTreeMap::new();
    let mut resumed = false;
    let mut journal = None;
    if let Some(path) = &journal_path {
        match Journal::open(std::path::Path::new(path), spec_digest) {
            Ok((j, replay)) => {
                resumed = replay.records > 0;
                prior = replay.outcomes;
                journal = Some(j);
            }
            Err(e) => {
                eprintln!("sweeprun: refusing journal {path}: {e}");
                exit(1);
            }
        }
    }

    // Live telemetry is always collected (it is cheap and drives the
    // progress lines); side files are only written when asked for.
    let telemetry = pim_telemetry::RunStatus::new("sweeprun");
    telemetry.set_progress_stderr(!quiet);
    if let Some(a) = &status_arg {
        let status_spec =
            pim_ckpt::spec::parse_file_spec("status", a, &["every"]).unwrap_or_else(|e| fail2(&e));
        let every = status_spec
            .get_u64("status", "every")
            .unwrap_or_else(|e| fail2(&e))
            .unwrap_or(pim_telemetry::DEFAULT_EVERY_SECS);
        if let Err(e) = telemetry.attach_status_file(&status_spec.path, every) {
            eprintln!("sweeprun: cannot write status {}: {e}", status_spec.path);
            exit(1);
        }
    }
    if let Some(path) = &metrics_arg {
        if let Err(e) = telemetry.attach_metrics_file(path) {
            eprintln!("sweeprun: cannot write metrics {path}: {e}");
            exit(1);
        }
    }

    let sigint = pim_ckpt::install_sigint_flag();
    pim_sweep::exec::silence_panic_output();
    let chaos_on = chaos.is_some();
    let cfg = ExecConfig {
        threads,
        max_attempts: spec.max_attempts,
        timeout_secs: spec.timeout_secs,
        backoff_ms: spec.backoff_ms,
        chaos,
    };
    let result = run_sweep(
        &cells,
        &prior,
        &cfg,
        journal.as_mut(),
        Some(sigint),
        Some(&telemetry),
    );
    telemetry.finish();

    let interrupted = sigint.load(Ordering::Relaxed);
    let prov = Provenance {
        executed: result.executed,
        reused: result.reused,
        retries: result.retries,
        threads: cfg.threads as u64,
        chaos: chaos_on,
        resumed,
        interrupted,
        wall_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
        cell_wall_ms: result.wall_hist.clone(),
    };
    let doc = pim_sweep::report::render(spec_digest, &result, &prov);
    match &report_arg {
        Some(path) => {
            if let Err(e) = pim_ckpt::atomic_write_class(
                pim_ckpt::vfs::PathClass::Report,
                std::path::Path::new(path),
                doc.to_string_pretty().as_bytes(),
            ) {
                eprintln!("sweeprun: cannot write report {path}: {e}");
                exit(1);
            }
        }
        None => println!("{}", doc.to_string_pretty()),
    }

    let mut done = 0u64;
    let mut quarantined = 0u64;
    let mut skipped = 0u64;
    for (cell, fate) in &result.cells {
        match fate {
            CellFate::Done(_) => done += 1,
            CellFate::Quarantined { attempts, error } => {
                quarantined += 1;
                eprintln!(
                    "sweeprun: quarantined `{}` after {attempts} attempts: {error}",
                    cell.key()
                );
            }
            CellFate::Skipped => skipped += 1,
        }
    }
    if let Some(e) = &result.journal_error {
        // The journal disk failed mid-run: the sweep finished and every
        // cell result is in the report above, but completions after the
        // failure were not recorded — so resume is disabled (a rerun
        // would trust an incomplete journal). Name the path and the
        // failing syscall; the record of *which* run to redo is the
        // resume command below.
        eprintln!("sweeprun: journal degraded: {e}");
        if let Some(path) = &journal_path {
            eprintln!(
                "sweeprun: resume is disabled for this run: records appended before the \
                 failure are durable, later completions are not; rerun in full with: \
                 rm {path} && sweeprun --sweep {sweep_arg} --journal {path}"
            );
        }
    }
    eprintln!(
        "sweeprun: {} cells: {done} done, {quarantined} quarantined, {skipped} skipped \
         ({} served from journal, {} executed) in {} ms",
        result.cells.len(),
        result.reused,
        result.executed,
        prov.wall_ms
    );
    if quarantined > 0 {
        if let Some(path) = &journal_path {
            eprintln!(
                "sweeprun: quarantines are recorded in the journal at {path}; retry them with: \
                 rm {path} && sweeprun --sweep {sweep_arg} --journal {path}"
            );
        }
    }
    if let Some(line) = pim_ckpt::vfs::summary_line() {
        eprintln!("{line}");
    }
    if interrupted {
        match &journal_path {
            Some(path) => eprintln!(
                "sweeprun: interrupted: completed cells are safe in the journal at {path}; \
                 resume with: sweeprun --sweep {sweep_arg} --journal {path}"
            ),
            None => eprintln!(
                "sweeprun: interrupted: no journal was configured, so completed work is lost; \
                 rerun with --journal FILE to make the sweep resumable"
            ),
        }
        exit(130);
    }
    if result.degraded() {
        exit(1);
    }
}
