//! End-to-end tests of `sweeprun`: crash-safe resume, journal reuse,
//! chaos convergence, quarantine, refused journals, and SIGINT drain.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn sweeprun() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweeprun"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweeprun-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_spec(dir: &Path, name: &str, body: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Strips the `provenance` block — the one section legitimately
/// different between an undisturbed run and its resumed/chaos twin.
fn strip_provenance(report: &str) -> String {
    let Some(start) = report.find(r#""provenance""#) else {
        return report.to_string();
    };
    let bytes = report.as_bytes();
    let mut depth = 0usize;
    let mut end = start;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    format!("{}{}", &report[..start], &report[end..])
}

fn provenance_field(report: &str, key: &str) -> u64 {
    let prov = &report[report.find(r#""provenance""#).expect("provenance block")..];
    let at = prov.find(&format!("\"{key}\"")).expect("field");
    let tail = &prov[at..];
    let colon = tail.find(':').unwrap();
    tail[colon + 1..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

const BASIC_SPEC: &str = "\
protocols = pim, illinois\n\
benches = tri, semi\n\
scales = smoke\n\
pes = 2\n\
backoff = 1\n";

#[test]
fn full_sweep_exits_0_and_is_thread_invariant_modulo_provenance() {
    let dir = tempdir("threads");
    let spec = write_spec(&dir, "s.sweep", BASIC_SPEC);
    let mut reports = Vec::new();
    for threads in ["1", "2"] {
        let report = dir.join(format!("r{threads}.json"));
        let out = sweeprun()
            .args(["--sweep", spec.to_str().unwrap(), "--threads", threads])
            .args(["--report", report.to_str().unwrap()])
            .output()
            .expect("sweeprun runs");
        assert!(out.status.success(), "{}", stderr_of(&out));
        reports.push(std::fs::read_to_string(&report).unwrap());
    }
    assert_ne!(reports[0], ""); // sanity
    assert_eq!(strip_provenance(&reports[0]), strip_provenance(&reports[1]));
    assert!(reports[0].contains(r#""schema": "pim-sweep/v1""#));
    assert!(reports[0].contains(r#""done": 4"#));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn completed_cells_are_served_from_the_journal_not_rerun() {
    let dir = tempdir("reuse");
    let spec = write_spec(&dir, "s.sweep", BASIC_SPEC);
    let journal = dir.join("j.swl");
    let run = |report: &str| {
        let path = dir.join(report);
        let out = sweeprun()
            .args(["--sweep", spec.to_str().unwrap(), "--threads", "2"])
            .args(["--journal", journal.to_str().unwrap()])
            .args(["--report", path.to_str().unwrap()])
            .output()
            .expect("sweeprun runs");
        assert!(out.status.success(), "{}", stderr_of(&out));
        std::fs::read_to_string(&path).unwrap()
    };
    let first = run("r1.json");
    assert_eq!(provenance_field(&first, "executed"), 4);
    assert_eq!(provenance_field(&first, "reused"), 0);
    // Second invocation over a complete journal executes nothing: the
    // cell-execution counter proves every cell came from the journal.
    let second = run("r2.json");
    assert_eq!(provenance_field(&second, "executed"), 0);
    assert_eq!(provenance_field(&second, "reused"), 4);
    assert_eq!(strip_provenance(&first), strip_provenance(&second));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_sweep_then_resume_matches_an_undisturbed_run() {
    let dir = tempdir("kill9");
    // Enough cells that a kill shortly after start lands mid-sweep.
    let spec_body = "\
        protocols = pim\n\
        benches = tri, semi, puzzle, pascal\n\
        scales = smoke\n\
        pes = 1, 2\n\
        backoff = 1\n";
    let spec = write_spec(&dir, "s.sweep", spec_body);
    // The undisturbed twin, no journal at all.
    let clean_report = dir.join("clean.json");
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap(), "--threads", "2"])
        .args(["--report", clean_report.to_str().unwrap()])
        .output()
        .expect("sweeprun runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let clean = std::fs::read_to_string(&clean_report).unwrap();

    for threads in ["1", "2"] {
        let journal = dir.join(format!("j{threads}.swl"));
        // Start a journaled sweep and SIGKILL it mid-run: no drain, no
        // atexit — the journal's fsync'd records are all that survives.
        let mut child = sweeprun()
            .args(["--sweep", spec.to_str().unwrap(), "--threads", threads])
            .args(["--journal", journal.to_str().unwrap()])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("sweeprun spawns");
        std::thread::sleep(std::time::Duration::from_millis(400));
        child.kill().expect("SIGKILL");
        child.wait().expect("reaped");

        // Resume from whatever the journal holds; the report must be
        // byte-identical to the undisturbed run modulo provenance.
        let resumed_report = dir.join(format!("resumed{threads}.json"));
        let out = sweeprun()
            .args(["--sweep", spec.to_str().unwrap(), "--threads", threads])
            .args(["--journal", journal.to_str().unwrap()])
            .args(["--report", resumed_report.to_str().unwrap()])
            .output()
            .expect("sweeprun runs");
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            stderr_of(&out)
        );
        let resumed = std::fs::read_to_string(&resumed_report).unwrap();
        assert_eq!(
            strip_provenance(&clean),
            strip_provenance(&resumed),
            "threads {threads}"
        );
        // And a third pass over the now-complete journal runs nothing.
        let third_report = dir.join(format!("third{threads}.json"));
        let out = sweeprun()
            .args(["--sweep", spec.to_str().unwrap(), "--threads", threads])
            .args(["--journal", journal.to_str().unwrap()])
            .args(["--report", third_report.to_str().unwrap()])
            .output()
            .expect("sweeprun runs");
        assert!(out.status.success(), "{}", stderr_of(&out));
        let third = std::fs::read_to_string(&third_report).unwrap();
        assert_eq!(provenance_field(&third, "executed"), 0);
        assert_eq!(strip_provenance(&clean), strip_provenance(&third));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poison_cell_is_quarantined_by_name_while_the_rest_complete() {
    let dir = tempdir("poison");
    let spec = write_spec(
        &dir,
        "s.sweep",
        "protocols = pim\nbenches = tri, poison, semi\nscales = smoke\npes = 2\n\
         retries = 3\nbackoff = 1\n",
    );
    let report = dir.join("r.json");
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap(), "--threads", "2"])
        .args(["--report", report.to_str().unwrap()])
        .output()
        .expect("sweeprun runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("quarantined `proto=pim bench=poison scale=smoke pes=2 block=4`"),
        "{stderr}"
    );
    assert!(stderr.contains("after 3 attempts"), "{stderr}");
    let body = std::fs::read_to_string(&report).unwrap();
    assert!(body.contains(r#""done": 2"#), "{body}");
    assert!(body.contains(r#""quarantined": 1"#), "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_runs_converge_to_the_undisturbed_report() {
    let dir = tempdir("chaos");
    let spec = write_spec(
        &dir,
        "s.sweep",
        "protocols = pim\nbenches = tri, semi, poison\nscales = smoke\npes = 2\n\
         retries = 3\nbackoff = 1\n",
    );
    let run = |extra: &[&str], report: &str| {
        let path = dir.join(report);
        let out = sweeprun()
            .args(["--sweep", spec.to_str().unwrap()])
            .args(extra)
            .args(["--report", path.to_str().unwrap()])
            .output()
            .expect("sweeprun runs");
        // The poison cell keeps every variant at exit 1; chaos must not
        // change that, nor the report body.
        assert_eq!(out.status.code(), Some(1), "{}", stderr_of(&out));
        std::fs::read_to_string(&path).unwrap()
    };
    let clean = run(&["--threads", "2"], "clean.json");
    for (seed, threads) in [("1", "1"), ("2", "2")] {
        let chaotic = run(
            &[
                "--threads",
                threads,
                "--chaos",
                &format!("seed={seed},kill=500000,delay=300000,max_delay_ms=5"),
            ],
            &format!("chaos{seed}.json"),
        );
        assert_eq!(
            strip_provenance(&clean),
            strip_provenance(&chaotic),
            "seed {seed}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_or_mismatched_journals_are_refused_with_named_errors() {
    let dir = tempdir("refuse");
    let spec = write_spec(&dir, "s.sweep", BASIC_SPEC);
    // Not a journal at all.
    let bogus = dir.join("bogus.swl");
    std::fs::write(&bogus, b"definitely not a journal").unwrap();
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap()])
        .args(["--journal", bogus.to_str().unwrap()])
        .output()
        .expect("sweeprun runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("refusing journal"), "{stderr}");
    assert!(stderr.contains("bad magic"), "{stderr}");
    // A journal from a different sweep grid.
    let other_spec = write_spec(
        &dir,
        "other.sweep",
        "protocols = pim\nbenches = tri\nscales = smoke\npes = 1\n",
    );
    let journal = dir.join("other.swl");
    let out = sweeprun()
        .args(["--sweep", other_spec.to_str().unwrap(), "--threads", "1"])
        .args(["--journal", journal.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .output()
        .expect("sweeprun runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap()])
        .args(["--journal", journal.to_str().unwrap()])
        .output()
        .expect("sweeprun runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("different sweep"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flag_and_spec_errors_exit_2_with_the_flag_named() {
    let dir = tempdir("flags");
    let out = sweeprun().output().expect("sweeprun runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--sweep is required"));
    let spec = write_spec(&dir, "s.sweep", BASIC_SPEC);
    let arg = format!("{}:retries=zero", spec.to_str().unwrap());
    let out = sweeprun()
        .args(["--sweep", &arg])
        .output()
        .expect("sweeprun runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("bad value `zero` for `retries` in --sweep"),
        "{stderr}"
    );
    let bad = write_spec(&dir, "bad.sweep", "protocols = mesi\n");
    let out = sweeprun()
        .args(["--sweep", bad.to_str().unwrap()])
        .output()
        .expect("sweeprun runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("unknown protocol `mesi`"));
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn sigint_drains_to_the_journal_and_exits_130_with_a_resume_hint() {
    let dir = tempdir("sigint");
    let spec_body = "\
        protocols = pim, illinois\n\
        benches = tri, semi, puzzle, pascal\n\
        scales = smoke\n\
        pes = 1, 2\n\
        backoff = 1\n";
    let spec = write_spec(&dir, "s.sweep", spec_body);
    let journal = dir.join("j.swl");
    let report = dir.join("r.json");
    let mut child = sweeprun()
        .args(["--sweep", spec.to_str().unwrap(), "--threads", "1"])
        .args(["--journal", journal.to_str().unwrap()])
        .args(["--report", report.to_str().unwrap()])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("sweeprun spawns");
    // Interrupt as soon as the first cell completes — a fixed sleep
    // races a release-mode sweep that finishes in a few hundred ms.
    use std::io::Read;
    let mut pipe = child.stderr.take().expect("stderr piped");
    let mut raw = Vec::new();
    let mut chunk = [0u8; 256];
    while !String::from_utf8_lossy(&raw).contains("done `") {
        let n = pipe.read(&mut chunk).expect("stderr readable");
        if n == 0 {
            break;
        }
        raw.extend_from_slice(&chunk[..n]);
    }
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    pipe.read_to_end(&mut raw).expect("stderr drains");
    let status = child.wait().expect("sweeprun exits");
    let stderr = String::from_utf8_lossy(&raw);
    assert_eq!(status.code(), Some(130), "{stderr}");
    assert!(stderr.contains("interrupted"), "{stderr}");
    assert!(stderr.contains("resume"), "{stderr}");
    // The hint names the journal path and spells out the exact resume
    // command, ready to paste.
    assert!(stderr.contains(journal.to_str().unwrap()), "{stderr}");
    assert!(
        stderr.contains(&format!(
            "resume with: sweeprun --sweep {} --journal {}",
            spec.to_str().unwrap(),
            journal.to_str().unwrap()
        )),
        "{stderr}"
    );
    // Even the interrupted invocation wrote a valid report enumerating
    // every cell (done + skipped).
    let body = std::fs::read_to_string(&report).unwrap();
    assert!(body.contains(r#""schema": "pim-sweep/v1""#));
    // Resuming completes the remaining cells with exit 0.
    let resumed = dir.join("resumed.json");
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap(), "--threads", "2"])
        .args(["--journal", journal.to_str().unwrap()])
        .args(["--report", resumed.to_str().unwrap()])
        .output()
        .expect("sweeprun runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let resumed = std::fs::read_to_string(&resumed).unwrap();
    assert!(resumed.contains(r#""skipped": 0"#), "{resumed}");
    std::fs::remove_dir_all(&dir).ok();
}
