//! The journal under host-I/O fault injection: fuzzed fault schedules
//! over append/reopen/replay cycles must never lose an acknowledged
//! record, never leave a record the replay accepts that was not
//! acknowledged, and never let a flaky (torn) read truncate a valid
//! journal.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pim_ckpt::vfs::{IoChaosConfig, IoFaultKind, PathClass, ScopedIoChaos, PPM};
use pim_sweep::journal::{replay_bytes, CellOutcome, CellRow, Journal, JournalError};

fn plan(seed: u64, rate_ppm: u64) -> IoChaosConfig {
    IoChaosConfig {
        seed,
        rate_ppm,
        kinds: IoFaultKind::ALL.to_vec(),
        max_retries: 4,
        backoff_ms: 0,
        kill: None,
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pim-swl-iochaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn row(seed: u64) -> CellRow {
    CellRow {
        reductions: seed,
        suspensions: seed ^ 1,
        references: seed.wrapping_mul(3),
        bus_cycles: seed.wrapping_add(7),
        lookups: seed >> 1,
        hits: seed >> 2,
        lr_total: seed & 0xFFFF,
        makespan: seed | 1,
    }
}

const SPEC: u64 = 0x10CA_0510_C4A0_5EED;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every fsync-acknowledged append survives any fault schedule,
    /// across chaos-era reopen cycles (where the initial read itself is
    /// tortured with EIO and torn reads) and into a clean reopen.
    #[test]
    fn acked_records_survive_any_fault_schedule(
        seed in any::<u64>(),
        rate in 0u64..PPM + 1,
        cells in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..12),
        reopen_mask in any::<u16>(),
    ) {
        let dir = scratch("acked");
        let path = dir.join("j.swl");
        let mut acked: BTreeMap<u64, CellOutcome> = BTreeMap::new();
        {
            let _chaos = ScopedIoChaos::install(plan(seed, rate));
            let (mut journal, replay) = Journal::open(&path, SPEC).unwrap();
            prop_assert_eq!(replay.records, 0);
            for (i, (digest, val)) in cells.iter().enumerate() {
                let outcome = CellOutcome::Done(row(*val));
                journal.append(*digest, &outcome).unwrap();
                acked.insert(*digest, outcome);
                // Periodically drop and reopen mid-chaos: the reopen's
                // read is itself fault-injected, and must still recover
                // every acknowledged record.
                if reopen_mask & (1 << (i % 16)) != 0 {
                    drop(journal);
                    let (j, replay) = Journal::open(&path, SPEC).unwrap();
                    prop_assert_eq!(&replay.outcomes, &acked);
                    prop_assert!(!replay.torn, "acked-only journal reported torn");
                    journal = j;
                }
            }
        }
        // Chaos off: the bytes on disk are a complete, untorn journal
        // holding exactly the acknowledged records.
        let bytes = std::fs::read(&path).unwrap();
        let replay = replay_bytes(&bytes, SPEC).unwrap();
        prop_assert!(!replay.torn);
        prop_assert_eq!(replay.valid_len, bytes.len() as u64);
        prop_assert_eq!(&replay.outcomes, &acked);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// When the journal disk dies mid-run, the append fails loud with the
/// journal path and the failing syscall named — and every record
/// acknowledged *before* the death is still recoverable.
#[test]
fn dead_journal_disk_names_path_and_syscall_and_keeps_acked_records() {
    let dir = scratch("dead");
    let path = dir.join("j.swl");
    // Journal ops: open costs a read + an append (header); each append
    // is one op. Let the disk die on the 5th journal op = 3rd record.
    let mut cfg = plan(11, 0);
    cfg.kill = Some((PathClass::Journal, 4));
    let _chaos = ScopedIoChaos::install(cfg);
    let (mut journal, _) = Journal::open(&path, SPEC).unwrap();
    journal.append(1, &CellOutcome::Done(row(10))).unwrap();
    journal.append(2, &CellOutcome::Done(row(20))).unwrap();
    let err = journal.append(3, &CellOutcome::Done(row(30))).unwrap_err();
    match &err {
        JournalError::Io {
            path: p,
            syscall,
            detail,
        } => {
            assert!(p.contains("j.swl"), "path not named: {err}");
            assert!(
                ["append", "fsync"].contains(syscall),
                "unexpected syscall `{syscall}`"
            );
            assert!(detail.contains("io-chaos"), "{detail}");
        }
        other => panic!("expected Io error, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("j.swl") && msg.contains("failed"), "{msg}");
    drop(_chaos);
    // The failed append was truncated back out: what is on disk is the
    // two acknowledged records, untorn.
    let bytes = std::fs::read(&path).unwrap();
    let replay = replay_bytes(&bytes, SPEC).unwrap();
    assert!(!replay.torn);
    assert_eq!(replay.outcomes.len(), 2);
    assert_eq!(replay.outcomes[&1], CellOutcome::Done(row(10)));
    assert_eq!(replay.outcomes[&2], CellOutcome::Done(row(20)));
    std::fs::remove_dir_all(&dir).ok();
}
