//! End-to-end tests of the sweeprun telemetry surface: `--status`,
//! `--metrics`, `--quiet`, and the determinism contract — telemetry is
//! stderr/side-file only, so report, journal, and stdout bytes are
//! identical with telemetry on or off at any thread count.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use pim_telemetry::Snapshot;

fn sweeprun() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweeprun"))
}

/// `sweepwatch` lives in the pim-telemetry crate, so there is no
/// `CARGO_BIN_EXE_` for it here; it is a sibling of `sweeprun` in the
/// shared target directory whenever the workspace test suite is built.
fn sweepwatch_path() -> PathBuf {
    Path::new(env!("CARGO_BIN_EXE_sweeprun")).with_file_name(if cfg!(windows) {
        "sweepwatch.exe"
    } else {
        "sweepwatch"
    })
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweeprun-tel-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_spec(dir: &Path, name: &str, body: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Strips the `provenance` block — the one section legitimately
/// different between runs (it carries wall-clock timing).
fn strip_provenance(report: &str) -> String {
    let Some(start) = report.find(r#""provenance""#) else {
        return report.to_string();
    };
    let bytes = report.as_bytes();
    let mut depth = 0usize;
    let mut end = start;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    format!("{}{}", &report[..start], &report[end..])
}

const CHAOS_SPEC: &str = "\
protocols = pim, illinois\n\
benches = tri, semi\n\
scales = smoke\n\
pes = 2\n\
retries = 3\n\
backoff = 1\n";

#[test]
fn telemetry_on_and_off_yield_identical_reports_and_journals() {
    let dir = tempdir("diff");
    let spec = write_spec(&dir, "s.sweep", CHAOS_SPEC);
    let chaos = "seed=5,kill=300000,delay=200000,max_delay_ms=5";
    let run = |tag: &str, threads: &str, telemetry: bool| -> (String, String, Vec<u8>) {
        let report = dir.join(format!("r-{tag}.json"));
        let journal = dir.join(format!("j-{tag}.swl"));
        let mut cmd = sweeprun();
        cmd.args(["--sweep", spec.to_str().unwrap(), "--threads", threads])
            .args(["--chaos", chaos])
            .args(["--journal", journal.to_str().unwrap()])
            .args(["--report", report.to_str().unwrap()]);
        if telemetry {
            let status = dir.join(format!("s-{tag}.json"));
            let metrics = dir.join(format!("m-{tag}.prom"));
            cmd.args(["--status", status.to_str().unwrap()])
                .args(["--metrics", metrics.to_str().unwrap()]);
        }
        let out = cmd.output().expect("sweeprun runs");
        assert!(out.status.success(), "{tag}: {}", stderr_of(&out));
        (
            String::from_utf8(out.stdout).unwrap(),
            std::fs::read_to_string(&report).unwrap(),
            std::fs::read(&journal).unwrap(),
        )
    };
    // Telemetry must not perturb a single byte of stdout, the report
    // (modulo provenance), or — at one thread, where record order is
    // deterministic — the journal.
    let (stdout_off, report_off, journal_off) = run("off-1", "1", false);
    let (stdout_on, report_on, journal_on) = run("on-1", "1", true);
    assert_eq!(stdout_off, stdout_on);
    assert_eq!(strip_provenance(&report_off), strip_provenance(&report_on));
    assert_eq!(journal_off, journal_on);
    // And thread count changes nothing outside provenance either way.
    let (_, report_on2, _) = run("on-2", "2", true);
    assert_eq!(strip_provenance(&report_off), strip_provenance(&report_on2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn status_and_metrics_files_carry_the_final_counts() {
    let dir = tempdir("files");
    let spec = write_spec(&dir, "s.sweep", CHAOS_SPEC);
    let status = dir.join("s.json");
    let metrics = dir.join("m.prom");
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap(), "--threads", "2"])
        .args(["--status", status.to_str().unwrap()])
        .args(["--metrics", metrics.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .output()
        .expect("sweeprun runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let snap = Snapshot::parse(&std::fs::read_to_string(&status).unwrap()).expect("parses");
    assert_eq!(snap.tool, "sweeprun");
    assert!(snap.finished);
    assert_eq!(snap.total, 4);
    assert_eq!(snap.done, 4);
    assert_eq!(snap.pending, 0);
    assert_eq!(snap.workers, 2);
    assert!(!snap.degraded());
    assert!(snap.engine_steps > 0, "engine chunks fed the registry");
    let prom = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        prom.contains("pim_cells_done_total{tool=\"sweeprun\"} 4"),
        "{prom}"
    );
    assert!(
        prom.contains("pim_run_finished{tool=\"sweeprun\"} 1"),
        "{prom}"
    );
    assert!(prom.contains("# TYPE pim_cells_total gauge"), "{prom}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The ISSUE's crash-safety contract: SIGKILL mid-sweep leaves the
/// status file either absent or a complete, parseable `pim-status/v1`
/// document — never a torn write.
#[cfg(unix)]
#[test]
fn sigkill_mid_sweep_leaves_an_untorn_snapshot_that_sweepwatch_renders() {
    let dir = tempdir("kill9");
    // Enough work (24 small-scale cells on one worker) that the run is
    // still going when the mid-run snapshot appears.
    let spec = write_spec(
        &dir,
        "s.sweep",
        "protocols = pim, illinois\nbenches = tri, semi, puzzle, pascal\n\
         scales = small\npes = 1, 2, 4\nbackoff = 1\n",
    );
    let status = dir.join("s.json");
    let mut child = sweeprun()
        .args(["--sweep", spec.to_str().unwrap(), "--threads", "1"])
        .args(["--status", &format!("{}:every=1", status.to_str().unwrap())])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("sweeprun spawns");
    // SIGKILL the instant the on-disk snapshot shows a live mid-run
    // state — a fixed sleep races the run length across build profiles.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        if let Ok(snap) = std::fs::read_to_string(&status)
            .map_err(|e| e.to_string())
            .and_then(|text| Snapshot::parse(&text))
        {
            if snap.total > 0 && !snap.finished {
                break;
            }
        }
        assert!(
            child.try_wait().expect("poll child").is_none(),
            "sweeprun finished before a live mid-run snapshot appeared"
        );
        assert!(
            std::time::Instant::now() < deadline,
            "no live snapshot within 60s"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reaped");

    let text = std::fs::read_to_string(&status).unwrap();
    let snap = Snapshot::parse(&text).expect("snapshot survived SIGKILL un-torn");
    assert!(!snap.finished, "killed mid-run");
    assert_eq!(snap.total, 24);

    // sweepwatch --once renders it and exits 0 (alive, not degraded).
    let watch = sweepwatch_path();
    if watch.exists() {
        let out = Command::new(&watch)
            .args(["--once", status.to_str().unwrap()])
            .output()
            .expect("sweepwatch runs");
        let rendered = String::from_utf8_lossy(&out.stdout);
        assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
        assert!(rendered.contains("cells settled"), "{rendered}");
        assert!(rendered.contains("sweeprun"), "{rendered}");
    } else {
        // `cargo test -p pim-sweep` alone does not build the
        // pim-telemetry binaries; the full-workspace suite and CI do.
        eprintln!("sweepwatch not built; skipping the render check");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quiet_suppresses_progress_lines_but_never_quarantine_lines() {
    let dir = tempdir("quiet");
    let spec = write_spec(
        &dir,
        "s.sweep",
        "protocols = pim\nbenches = tri, poison, semi\nscales = smoke\npes = 2\n\
         retries = 2\nbackoff = 1\n",
    );
    let run = |quiet: bool| -> String {
        let mut cmd = sweeprun();
        cmd.args(["--sweep", spec.to_str().unwrap(), "--threads", "1"]);
        if quiet {
            cmd.arg("--quiet");
        }
        let out = cmd
            .stdout(std::process::Stdio::null())
            .output()
            .expect("sweeprun runs");
        // The poison cell keeps both variants at exit 1.
        assert_eq!(out.status.code(), Some(1), "{}", stderr_of(&out));
        stderr_of(&out)
    };
    let loud = run(false);
    assert!(loud.contains("done `proto=pim bench=Tri"), "{loud}");
    assert!(loud.contains("retry `proto=pim bench=poison"), "{loud}");
    assert!(
        loud.contains("quarantined `proto=pim bench=poison"),
        "{loud}"
    );
    let quiet = run(true);
    assert!(!quiet.contains("done `"), "{quiet}");
    assert!(!quiet.contains("retry `"), "{quiet}");
    // Quarantine and summary lines survive --quiet.
    assert!(
        quiet.contains("quarantined `proto=pim bench=poison"),
        "{quiet}"
    );
    assert!(quiet.contains("1 quarantined"), "{quiet}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_status_spec_or_unwritable_paths_fail_fast() {
    let dir = tempdir("badflags");
    let spec = write_spec(&dir, "s.sweep", CHAOS_SPEC);
    // Unknown key in the --status spec is a flag error.
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap()])
        .args(["--status", "s.json:bogus=1"])
        .output()
        .expect("sweeprun runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("bogus"), "{}", stderr_of(&out));
    // An unwritable metrics destination fails before any cell runs.
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap()])
        .args(["--metrics", "/nonexistent-dir/m.prom"])
        .output()
        .expect("sweeprun runs");
    assert_eq!(out.status.code(), Some(1), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("cannot write metrics"),
        "{}",
        stderr_of(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}
