//! End-to-end `sweeprun --io-chaos`: heavy host-I/O fault injection —
//! alone, combined with the `--chaos` worker killer, across resume,
//! and with a dead journal disk — must either converge byte-identically
//! (modulo provenance) to the undisturbed report, or degrade loudly by
//! name with every completed cell still reported.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn sweeprun() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweeprun"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweeprun-iochaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_spec(dir: &Path, name: &str, body: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Strips the `provenance` block — the one section legitimately
/// different between an undisturbed run and its io-chaos twin.
fn strip_provenance(report: &str) -> String {
    let Some(start) = report.find(r#""provenance""#) else {
        return report.to_string();
    };
    let bytes = report.as_bytes();
    let mut depth = 0usize;
    let mut end = start;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    format!("{}{}", &report[..start], &report[end..])
}

fn provenance_field(report: &str, key: &str) -> u64 {
    let prov = &report[report.find(r#""provenance""#).expect("provenance block")..];
    let at = prov.find(&format!("\"{key}\"")).expect("field");
    let tail = &prov[at..];
    let colon = tail.find(':').unwrap();
    tail[colon + 1..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

const BASIC_SPEC: &str = "\
protocols = pim, illinois\n\
benches = tri, semi\n\
scales = smoke\n\
pes = 2\n\
backoff = 1\n";

/// Heavy enough that nearly every durable op draws faults, while the
/// bounded-retry discipline still converges (the 5th attempt is clean).
const HEAVY: &str = "seed=7,rate=900000,backoff_ms=0";

#[test]
fn io_chaos_with_worker_chaos_converges_to_the_undisturbed_report() {
    let dir = tempdir("converge");
    let spec = write_spec(&dir, "s.sweep", BASIC_SPEC);
    let clean = dir.join("clean.json");
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap(), "--threads", "2"])
        .args(["--report", clean.to_str().unwrap()])
        .output()
        .expect("sweeprun runs");
    assert!(out.status.success(), "{}", stderr_of(&out));

    let tortured = dir.join("tortured.json");
    let journal = dir.join("j.swl");
    let status = dir.join("status.json");
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap(), "--threads", "2"])
        .args(["--journal", journal.to_str().unwrap()])
        .args(["--report", tortured.to_str().unwrap()])
        .args(["--status", &format!("{}:every=0", status.to_str().unwrap())])
        .args(["--chaos", "seed=5", "--io-chaos", HEAVY])
        .output()
        .expect("sweeprun runs");
    let err = stderr_of(&out);
    assert!(out.status.success(), "{err}");
    assert!(err.contains("[io-chaos]"), "missing summary line: {err}");

    let clean_text = std::fs::read_to_string(&clean).unwrap();
    let tortured_text = std::fs::read_to_string(&tortured).unwrap();
    assert_eq!(
        strip_provenance(&clean_text),
        strip_provenance(&tortured_text),
        "io-chaos perturbed the report"
    );
    assert!(tortured_text.contains(r#""done": 4"#));
    // The telemetry side file survived the torture as valid JSON too.
    let status_text = std::fs::read_to_string(&status).unwrap();
    assert!(status_text.contains(r#""schema": "pim-status/v1""#));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_under_io_chaos_serves_all_cells_from_the_tortured_journal() {
    let dir = tempdir("resume");
    let spec = write_spec(&dir, "s.sweep", BASIC_SPEC);
    let journal = dir.join("j.swl");
    let run = |report: &str| {
        let path = dir.join(report);
        let out = sweeprun()
            .args(["--sweep", spec.to_str().unwrap(), "--threads", "2"])
            .args(["--journal", journal.to_str().unwrap()])
            .args(["--report", path.to_str().unwrap()])
            .args(["--io-chaos", HEAVY])
            .output()
            .expect("sweeprun runs");
        assert!(out.status.success(), "{}", stderr_of(&out));
        std::fs::read_to_string(&path).unwrap()
    };
    // Every append in the first run was fault-injected and recovered;
    // the journal it leaves must serve the entire resume.
    let first = run("r1.json");
    assert_eq!(provenance_field(&first, "executed"), 4);
    let second = run("r2.json");
    assert_eq!(provenance_field(&second, "executed"), 0);
    assert_eq!(provenance_field(&second, "reused"), 4);
    assert_eq!(strip_provenance(&first), strip_provenance(&second));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dead_journal_disk_finishes_degraded_with_results_reported() {
    let dir = tempdir("deaddisk");
    let spec = write_spec(&dir, "s.sweep", BASIC_SPEC);
    let journal = dir.join("j.swl");
    let report = dir.join("r.json");
    // Journal class ops: open read (1) + header append (2), then one
    // append per cell. Dying from the 4th op kills the 2nd cell append
    // and everything after — mid-run, after real records landed.
    let out = sweeprun()
        .args(["--sweep", spec.to_str().unwrap(), "--threads", "1"])
        .args(["--journal", journal.to_str().unwrap()])
        .args(["--report", report.to_str().unwrap()])
        .args(["--io-chaos", "seed=3,rate=0,backoff_ms=0,kill=journal@3"])
        .output()
        .expect("sweeprun runs");
    let err = stderr_of(&out);
    assert_eq!(out.status.code(), Some(1), "expected degraded exit: {err}");
    // The diagnostic names the journal path, the failing syscall, and
    // says resume is off — while every cell result is still reported.
    assert!(err.contains("journal degraded"), "{err}");
    assert!(err.contains("j.swl"), "{err}");
    assert!(
        err.contains("append failed") || err.contains("fsync failed"),
        "syscall not named: {err}"
    );
    assert!(err.contains("resume is disabled"), "{err}");
    assert!(err.contains("[io-chaos]"), "{err}");
    let report_text = std::fs::read_to_string(&report).unwrap();
    assert!(report_text.contains(r#""done": 4"#), "{report_text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_io_chaos_specs_exit_2_with_the_flag_named() {
    for (spec, needle) in [
        ("rate=5", "missing `seed` in --io-chaos"),
        ("seed=x", "bad value `x` for `seed` in --io-chaos"),
        (
            "seed=1,kinds=quantum",
            "unknown kind `quantum` in --io-chaos",
        ),
        ("seed=1,bogus=2", "unknown key `bogus` in --io-chaos"),
        ("seed=1,kill=journal", "must be CLASS@N"),
        ("seed=1,rate=1000001", "parts per million"),
    ] {
        let out = sweeprun()
            .args(["--sweep", "s.sweep", "--io-chaos", spec])
            .output()
            .expect("sweeprun runs");
        assert_eq!(out.status.code(), Some(2), "spec `{spec}`");
        let err = stderr_of(&out);
        assert!(err.contains(needle), "spec `{spec}`: {err}");
    }
}
