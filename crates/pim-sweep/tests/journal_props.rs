//! Corruption fuzzing of the sweep journal reader: whatever we do to
//! the bytes — truncate anywhere, flip any bit, tear the final record,
//! duplicate cells — replay never panics, never invents outcomes, and
//! never counts a cell twice.

use proptest::prelude::*;

use pim_sweep::journal::{replay_bytes, CellOutcome, CellRow, Journal, JournalError, MAGIC};

const SPEC: u64 = 0x5157_EE95_C0FF_EE01;
const HEADER_LEN: usize = 11 + 8;

fn row(seed: u64) -> CellRow {
    CellRow {
        reductions: seed,
        suspensions: seed ^ 1,
        references: seed.wrapping_mul(3),
        bus_cycles: seed.wrapping_add(7),
        lookups: seed >> 1,
        hits: seed >> 2,
        lr_total: seed & 0xFFFF,
        makespan: seed | 1,
    }
}

fn outcome(kind: u8, seed: u64) -> CellOutcome {
    if kind.is_multiple_of(3) {
        CellOutcome::Quarantined {
            attempts: (kind % 7) as u32 + 1,
            error: format!("fuzz error {seed:#x}"),
        }
    } else {
        CellOutcome::Done(row(seed))
    }
}

/// Builds a valid journal through the real writer so the fuzz corpus
/// matches what production appends produce.
fn build_journal(records: &[(u64, u8, u64)]) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!(
        "pim-swl-props-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fuzz.swl");
    std::fs::remove_file(&path).ok();
    let (mut journal, _) = Journal::open(&path, SPEC).unwrap();
    for (digest, kind, seed) in records {
        journal.append(*digest, &outcome(*kind, *seed)).unwrap();
    }
    drop(journal);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

fn records_strategy() -> impl Strategy<Value = Vec<(u64, u8, u64)>> {
    proptest::collection::vec((any::<u64>(), any::<u8>(), any::<u64>()), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_truncation_recovers_a_consistent_prefix(
        records in records_strategy(),
        cut_seed in any::<u64>(),
    ) {
        let full = build_journal(&records);
        let full_replay = replay_bytes(&full, SPEC).unwrap();
        let cut = HEADER_LEN + (cut_seed as usize) % (full.len() - HEADER_LEN + 1);
        let replay = replay_bytes(&full[..cut], SPEC).unwrap();
        // Only whole records survive, in order, with last-wins dedup —
        // every recovered outcome must agree with the full journal's
        // view restricted to the surviving record count.
        prop_assert!(replay.records <= records.len() as u64);
        prop_assert!(replay.valid_len as usize <= cut);
        prop_assert_eq!(replay.torn, (replay.valid_len as usize) < cut);
        let survived: std::collections::BTreeMap<u64, CellOutcome> = records
            .iter()
            .take(replay.records as usize)
            .map(|(d, k, s)| (*d, outcome(*k, *s)))
            .collect();
        prop_assert_eq!(&replay.outcomes, &survived);
        // Re-reading the truncated-to-valid prefix is stable (what
        // `Journal::open` does before appending).
        let again = replay_bytes(&full[..replay.valid_len as usize], SPEC).unwrap();
        prop_assert!(!again.torn);
        prop_assert_eq!(again.outcomes, replay.outcomes);
        prop_assert_eq!(full_replay.records, records.len() as u64);
    }

    #[test]
    fn any_single_bit_flip_never_panics_or_invents_outcomes(
        records in records_strategy(),
        pos_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let full = build_journal(&records);
        let pos = (pos_seed as usize) % full.len();
        let mut bytes = full.clone();
        bytes[pos] ^= 1 << bit;
        match replay_bytes(&bytes, SPEC) {
            // A flip in the header is refused by name, never recovered.
            Err(JournalError::BadMagic) => prop_assert!(pos < MAGIC.len()),
            Err(JournalError::SpecMismatch { .. }) => {
                prop_assert!((MAGIC.len()..HEADER_LEN).contains(&pos));
            }
            Err(e @ JournalError::Io { .. }) => {
                prop_assert!(false, "io error from pure replay: {e}")
            }
            Ok(replay) => {
                prop_assert!(replay.records <= records.len() as u64);
                // Whatever survives is a prefix of the true record
                // stream (the flipped record and everything after it
                // are discarded; earlier records are untouched).
                let survived: std::collections::BTreeMap<u64, CellOutcome> = records
                    .iter()
                    .take(replay.records as usize)
                    .map(|(d, k, s)| (*d, outcome(*k, *s)))
                    .collect();
                prop_assert_eq!(replay.outcomes, survived);
            }
        }
    }

    #[test]
    fn duplicate_cells_are_counted_once_with_the_last_record_winning(
        digest in any::<u64>(),
        kinds in proptest::collection::vec((any::<u8>(), any::<u64>()), 2..6),
    ) {
        let records: Vec<(u64, u8, u64)> =
            kinds.iter().map(|(k, s)| (digest, *k, *s)).collect();
        let bytes = build_journal(&records);
        let replay = replay_bytes(&bytes, SPEC).unwrap();
        prop_assert_eq!(replay.records, records.len() as u64);
        prop_assert_eq!(replay.outcomes.len(), 1);
        let (last_kind, last_seed) = kinds[kinds.len() - 1];
        prop_assert_eq!(&replay.outcomes[&digest], &outcome(last_kind, last_seed));
    }

    #[test]
    fn trailing_garbage_is_a_torn_tail_not_lost_records(
        records in records_strategy(),
        garbage in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let mut bytes = build_journal(&records);
        bytes.extend_from_slice(&garbage);
        let replay = replay_bytes(&bytes, SPEC).unwrap();
        // Valid records all survive; the garbage can only read as a
        // torn tail (a forged valid record needs a matching FNV-1a
        // checksum, which random bytes do not produce).
        prop_assert_eq!(replay.records, records.len() as u64);
        prop_assert!(replay.torn);
    }
}
