//! Property tests of the `pim-status/v1` snapshot cycle: whatever a
//! run does to the registry, the rendered document parses back to
//! exactly the rendered numbers; any torn prefix is rejected; and the
//! parser never panics on arbitrary input.

use proptest::prelude::*;

use pim_obs::Json;
use pim_telemetry::{RunStatus, Snapshot};

/// One registry operation, proptest-generated. Keys index a small pool
/// so operations collide on cells (exercising the terminal-state and
/// occupancy rules), with one arbitrary string key for escaping.
#[derive(Debug, Clone)]
enum Op {
    Register(u8),
    Running(u8),
    Retrying(u8, u32),
    Done(u8),
    Quarantined(u8, u32, String),
    Skipped(u8),
    Reuse(u8, bool),
    ChaosKill,
    ChaosDelay,
    EngineChunk(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Register),
        any::<u8>().prop_map(Op::Running),
        (any::<u8>(), 1u32..100).prop_map(|(k, a)| Op::Retrying(k, a)),
        any::<u8>().prop_map(Op::Done),
        (any::<u8>(), 1u32..100, ".{0,40}").prop_map(|(k, a, e)| Op::Quarantined(k, a, e)),
        any::<u8>().prop_map(Op::Skipped),
        (any::<u8>(), any::<bool>()).prop_map(|(k, q)| Op::Reuse(k, q)),
        Just(Op::ChaosKill),
        Just(Op::ChaosDelay),
        any::<u64>().prop_map(Op::EngineChunk),
    ]
}

/// Cell keys cover the JSON-hostile characters: quotes, backslashes,
/// newlines, non-ASCII.
fn key(i: u8) -> String {
    match i % 6 {
        0 => "proto=pim bench=Tri scale=smoke pes=2 block=4".into(),
        1 => "quote\"back\\slash".into(),
        2 => "newline\nand\ttab".into(),
        3 => "unicode-\u{203d}-\u{1f980}".into(),
        4 => String::new(),
        _ => format!("cell-{i}"),
    }
}

fn drive(ops: &[Op]) -> RunStatus {
    let status = RunStatus::new("fuzz");
    status.set_progress_stderr(false);
    for op in ops {
        match op {
            Op::Register(k) => status.register_cell(&key(*k)),
            Op::Running(k) => status.cell_running(&key(*k)),
            Op::Retrying(k, a) => status.cell_retrying(&key(*k), *a),
            Op::Done(k) => status.cell_done(&key(*k)),
            Op::Quarantined(k, a, e) => status.cell_quarantined(&key(*k), *a, e),
            Op::Skipped(k) => status.cell_skipped(&key(*k)),
            Op::Reuse(k, q) => status.reuse_cell(&key(*k), *q),
            Op::ChaosKill => status.chaos_kill(),
            Op::ChaosDelay => status.chaos_delay(),
            Op::EngineChunk(steps) => status.engine_chunk(*steps),
        }
    }
    status
}

fn field<'a>(doc: &'a Json, name: &str) -> &'a Json {
    let Json::Obj(pairs) = doc else {
        panic!("not an object")
    };
    &pairs
        .iter()
        .find(|(k, _)| *k == name)
        .unwrap_or_else(|| panic!("missing field {name}"))
        .1
}

fn as_u64(doc: &Json, name: &str) -> u64 {
    match field(doc, name) {
        Json::U64(v) => *v,
        other => panic!("{name} is not u64: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parsed snapshot reproduces every counter the document
    /// carries — including full-range u64s and hostile cell keys.
    #[test]
    fn rendered_snapshots_roundtrip_exactly(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let status = drive(&ops);
        let doc = status.snapshot_json();
        let text = doc.to_string_pretty();
        let snap = Snapshot::parse(&text).expect("own snapshot parses");
        let cells = field(&doc, "cells");
        prop_assert_eq!(snap.total, as_u64(cells, "total"));
        prop_assert_eq!(snap.pending, as_u64(cells, "pending"));
        prop_assert_eq!(snap.running, as_u64(cells, "running"));
        prop_assert_eq!(snap.done, as_u64(cells, "done"));
        prop_assert_eq!(snap.quarantined, as_u64(cells, "quarantined"));
        prop_assert_eq!(snap.skipped, as_u64(cells, "skipped"));
        prop_assert_eq!(snap.reused, as_u64(cells, "reused"));
        prop_assert_eq!(snap.attempts, as_u64(&doc, "attempts"));
        prop_assert_eq!(snap.retries, as_u64(&doc, "retries"));
        let chaos = field(&doc, "chaos");
        prop_assert_eq!(snap.chaos_kills, as_u64(chaos, "kills"));
        prop_assert_eq!(snap.chaos_delays, as_u64(chaos, "delays"));
        let engine = field(&doc, "engine");
        prop_assert_eq!(snap.engine_steps, as_u64(engine, "steps"));
        prop_assert_eq!(snap.engine_chunks, as_u64(engine, "chunks"));
        // The cell lists survive string escaping round trips.
        let Json::Arr(running) = field(&doc, "running_cells") else {
            panic!("running_cells is not an array")
        };
        prop_assert_eq!(snap.running_cells.len(), running.len());
        for (parsed, original) in snap.running_cells.iter().zip(running) {
            let Json::Str(s) = original else { panic!("not a string") };
            prop_assert_eq!(parsed, s);
        }
        let Json::Arr(quarantined) = field(&doc, "quarantined_cells") else {
            panic!("quarantined_cells is not an array")
        };
        prop_assert_eq!(snap.quarantined_cells.len(), quarantined.len());
        for (parsed, original) in snap.quarantined_cells.iter().zip(quarantined) {
            let Json::Str(cell) = field(original, "cell") else { panic!("not a string") };
            let Json::Str(error) = field(original, "error") else { panic!("not a string") };
            prop_assert_eq!(&parsed.cell, cell);
            prop_assert_eq!(&parsed.error, error);
            prop_assert_eq!(parsed.attempts, as_u64(original, "attempts"));
        }
        // Bookkeeping invariant: every registered cell is in exactly
        // one bucket.
        prop_assert_eq!(
            snap.total,
            snap.pending + snap.running + snap.done + snap.quarantined + snap.skipped
        );
    }

    /// Crash safety: a torn snapshot — any strict prefix beyond
    /// trailing whitespace — is an error, never a silently-wrong parse.
    #[test]
    fn truncated_snapshots_are_always_rejected(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        cut_seed in any::<u64>(),
    ) {
        let text = drive(&ops).snapshot_json().to_string_pretty();
        let complete = text.trim_end().len();
        let mut cut = (cut_seed % complete as u64) as usize;
        while cut > 0 && !text.is_char_boundary(cut) {
            cut -= 1;
        }
        if cut < complete {
            prop_assert!(Snapshot::parse(&text[..cut]).is_err(), "prefix of {cut} bytes parsed");
        }
    }

    /// The parser is total: arbitrary input returns Ok or Err, never
    /// panics.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = Snapshot::parse(&input);
    }

    /// Arbitrary mutations of a valid snapshot never panic the parser
    /// either (they may still parse if the mutation lands in a string).
    #[test]
    fn parser_never_panics_on_mutated_snapshots(
        ops in proptest::collection::vec(op_strategy(), 0..20),
        at in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = drive(&ops).snapshot_json().to_string_pretty().into_bytes();
        let i = (at % bytes.len() as u64) as usize;
        bytes[i] = byte;
        let _ = Snapshot::parse(&String::from_utf8_lossy(&bytes));
    }
}
