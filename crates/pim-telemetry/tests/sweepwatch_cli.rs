//! End-to-end tests of the `sweepwatch` viewer: the exit-code contract
//! (0 healthy / 1 missing, torn, stale, or finished-degraded / 2 bad
//! flags) and the `--once` rendering the crash-safety suite scripts
//! against.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use pim_telemetry::RunStatus;

fn sweepwatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweepwatch"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweepwatch-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Writes a status file through the real registry, mid-run shape.
fn write_live_snapshot(path: &Path) {
    let status = RunStatus::new("testtool");
    status.set_workers(2);
    for key in ["alpha", "beta", "gamma", "delta"] {
        status.register_cell(key);
    }
    status.cell_running("alpha");
    status.cell_done("alpha");
    status.cell_running("beta");
    status
        .attach_status_file(path.to_str().unwrap(), 1)
        .unwrap();
}

#[test]
fn once_renders_a_healthy_snapshot_and_exits_0() {
    let dir = tempdir("healthy");
    let path = dir.join("s.json");
    write_live_snapshot(&path);
    let out = sweepwatch()
        .args(["--once", path.to_str().unwrap()])
        .output()
        .expect("sweepwatch runs");
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert!(rendered.contains("testtool"), "{rendered}");
    assert!(rendered.contains("1/4 cells settled"), "{rendered}");
    assert!(rendered.contains("in flight:"), "{rendered}");
    assert!(rendered.contains("beta"), "{rendered}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn finished_degraded_runs_exit_1_and_name_the_quarantine() {
    let dir = tempdir("degraded");
    let path = dir.join("s.json");
    let status = RunStatus::new("testtool");
    status.register_cell("good");
    status.register_cell("bad");
    status.cell_running("good");
    status.cell_done("good");
    status.cell_running("bad");
    status.cell_quarantined("bad", 3, "boom");
    status
        .attach_status_file(path.to_str().unwrap(), 1)
        .unwrap();
    status.finish();
    let out = sweepwatch()
        .args(["--once", path.to_str().unwrap()])
        .output()
        .expect("sweepwatch runs");
    assert_eq!(out.status.code(), Some(1), "{}", stderr_of(&out));
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert!(rendered.contains("quarantined:"), "{rendered}");
    assert!(rendered.contains("bad (3 attempts): boom"), "{rendered}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_or_torn_snapshots_exit_1_with_the_reason() {
    let dir = tempdir("torn");
    // Missing file.
    let out = sweepwatch()
        .args(["--once", dir.join("absent.json").to_str().unwrap()])
        .output()
        .expect("sweepwatch runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("cannot read"),
        "{}",
        stderr_of(&out)
    );
    // Torn JSON (a truncated prefix).
    let torn = dir.join("torn.json");
    std::fs::write(
        &torn,
        "{\n  \"schema\": \"pim-status/v1\",\n  \"tool\": \"x",
    )
    .unwrap();
    let out = sweepwatch()
        .args(["--once", torn.to_str().unwrap()])
        .output()
        .expect("sweepwatch runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("bad snapshot"),
        "{}",
        stderr_of(&out)
    );
    // Wrong schema.
    let wrong = dir.join("wrong.json");
    std::fs::write(&wrong, "{\"schema\": \"not-a-status/v9\"}").unwrap();
    let out = sweepwatch()
        .args(["--once", wrong.to_str().unwrap()])
        .output()
        .expect("sweepwatch runs");
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unfinished_snapshots_older_than_stale_exit_1() {
    let dir = tempdir("stale");
    let path = dir.join("s.json");
    write_live_snapshot(&path);
    std::thread::sleep(std::time::Duration::from_millis(1100));
    // Unfinished + 1s old + --stale 0 → stale.
    let out = sweepwatch()
        .args(["--once", "--stale", "0", path.to_str().unwrap()])
        .output()
        .expect("sweepwatch runs");
    assert_eq!(out.status.code(), Some(1), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("stale"), "{}", stderr_of(&out));
    // A generous window keeps it healthy.
    let out = sweepwatch()
        .args(["--once", "--stale", "3600", path.to_str().unwrap()])
        .output()
        .expect("sweepwatch runs");
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    // A *finished* snapshot is never stale: the producer stopped
    // writing because the run is over.
    let finished = dir.join("f.json");
    let status = RunStatus::new("testtool");
    status.register_cell("only");
    status.cell_running("only");
    status.cell_done("only");
    status
        .attach_status_file(finished.to_str().unwrap(), 1)
        .unwrap();
    status.finish();
    std::thread::sleep(std::time::Duration::from_millis(1100));
    let out = sweepwatch()
        .args(["--once", "--stale", "0", finished.to_str().unwrap()])
        .output()
        .expect("sweepwatch runs");
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_exit_2_with_the_flag_named() {
    for (args, needle) in [
        (vec!["--bogus", "s.json"], "unknown flag `--bogus`"),
        (vec!["--once"], "missing STATUS_FILE"),
        (vec!["--once", "a.json", "b.json"], "more than one"),
        (vec!["--every", "0", "s.json"], "--every must be at least 1"),
        (vec!["--every", "xyz", "s.json"], "bad value `xyz`"),
        (vec!["--stale"], "--stale needs a value"),
    ] {
        let out = sweepwatch().args(&args).output().expect("sweepwatch runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            stderr_of(&out).contains(needle),
            "{args:?}: {}",
            stderr_of(&out)
        );
        assert!(stderr_of(&out).contains("usage:"), "{args:?}");
    }
}

#[test]
fn watch_mode_follows_a_run_to_completion() {
    let dir = tempdir("watch");
    let path = dir.join("s.json");
    write_live_snapshot(&path);
    let child = sweepwatch()
        .args(["--every", "1", path.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("sweepwatch spawns");
    // Finish the run under the watcher's feet.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let status = RunStatus::new("testtool");
    for key in ["alpha", "beta", "gamma", "delta"] {
        status.register_cell(key);
        status.cell_running(key);
        status.cell_done(key);
    }
    status
        .attach_status_file(path.to_str().unwrap(), 1)
        .unwrap();
    status.finish();
    let out = child.wait_with_output().expect("sweepwatch exits");
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert!(rendered.contains("4/4 cells settled"), "{rendered}");
    std::fs::remove_dir_all(&dir).ok();
}
