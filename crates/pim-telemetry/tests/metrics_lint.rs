//! Lint: every Prometheus metric this crate exports must be documented
//! in the DESIGN "Live telemetry" metric table. Renaming or adding a
//! metric without updating the docs fails here.

use pim_telemetry::RunStatus;

#[test]
fn every_exported_metric_name_is_documented_in_design() {
    // Enable the profiler with a real span so the conditional pim_perf
    // metrics are exported and linted too.
    pim_perf::enable();
    {
        let _span = pim_perf::span(pim_perf::phase::EXPERIMENT);
    }
    let status = RunStatus::new("lint");
    status.register_cell("cell");
    status.cell_running("cell");
    status.cell_done("cell");
    let text = status.metrics_text();

    // Every exported metric carries a `# TYPE <name> <kind>` header.
    let names: Vec<&str> = text
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    assert!(
        names.len() >= 16,
        "expected the full metric set, got {names:?}"
    );

    let design_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let design = std::fs::read_to_string(design_path).expect("DESIGN.md is readable");
    let telemetry_section = design
        .split("## Live telemetry")
        .nth(1)
        .expect("DESIGN.md has a `## Live telemetry` section");
    let section_end = telemetry_section
        .find("\n## ")
        .unwrap_or(telemetry_section.len());
    let section = &telemetry_section[..section_end];
    let undocumented: Vec<&&str> = names
        .iter()
        .filter(|name| !section.contains(&format!("`{name}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "metrics missing from the DESIGN Live-telemetry table: {undocumented:?}"
    );
}
