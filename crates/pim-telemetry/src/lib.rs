//! Live run telemetry: what a long-running binary is doing *right now*.
//!
//! The other observability crates are post-mortem — pim-obs aggregates
//! event metrics, pim-tracer records event logs, pim-perf profiles the
//! host — but none of them is readable while the run is still going. A
//! sweep of thousands of cells is a black box until exit. This crate
//! closes that gap with three pieces:
//!
//! - [`RunStatus`] — a lock-cheap registry of per-cell run state
//!   (pending → running → retrying → done/quarantined/skipped), worker
//!   occupancy, attempt/retry/chaos counters, and engine-chunk
//!   progress. Hot-path updates are atomic increments; the per-cell
//!   state map is only locked at attempt boundaries.
//! - Crash-safe status snapshots — a schema-versioned `pim-status/v1`
//!   JSON document written through pim-ckpt's atomic
//!   temp+fsync+rename, so a `kill -9` at any instant leaves either no
//!   snapshot or a complete, parseable one — never a torn file.
//!   [`Snapshot::parse`] reads them back.
//! - Prometheus text-format exposition (node_exporter
//!   textfile-collector compatible) of the same counters, plus
//!   pim-perf's per-phase profile when enabled.
//!
//! The determinism contract: telemetry writes **only** to stderr and
//! its own side files. Reports, traces, journals, and stdout are
//! byte-identical with telemetry on or off, at any thread count — the
//! differential suites pin this.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use pim_obs::Json;

mod snapshot;

pub use snapshot::{QuarantinedCell, Snapshot};

/// The schema identifier of status snapshots.
pub const STATUS_SCHEMA: &str = "pim-status/v1";

/// Default seconds between periodic snapshot writes.
pub const DEFAULT_EVERY_SECS: u64 = 2;

/// One cell's position in the run lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// Registered, not yet claimed by a worker.
    Pending,
    /// A worker is executing its current attempt.
    Running,
    /// A failed attempt is being retried (the worker stays occupied
    /// through the backoff).
    Retrying,
    /// Completed and validated.
    Done,
    /// Failed every permitted attempt.
    Quarantined,
    /// Never ran to completion this invocation (cancel raised first).
    Skipped,
}

impl CellState {
    /// Whether a worker currently holds the cell.
    fn occupies(self) -> bool {
        matches!(self, CellState::Running | CellState::Retrying)
    }

    /// Whether the cell has reached a terminal state.
    fn terminal(self) -> bool {
        matches!(
            self,
            CellState::Done | CellState::Quarantined | CellState::Skipped
        )
    }
}

#[derive(Debug)]
struct CellEntry {
    state: CellState,
    attempts: u32,
    error: String,
}

/// Where periodic snapshots and metrics go. Paths are set once by the
/// binary; writes are rate-limited by `every_ms` and always atomic.
#[derive(Debug, Default)]
struct Sinks {
    active: AtomicBool,
    status_path: Mutex<Option<String>>,
    metrics_path: Mutex<Option<String>>,
    every_ms: AtomicU64,
    last_flush_ms: AtomicU64,
    warned: AtomicBool,
}

/// The live registry one run feeds and one snapshot file mirrors.
///
/// Cheap enough to update from engine chunk boundaries: counter updates
/// are single atomic adds, and the per-cell map is locked only on
/// attempt transitions (a handful per cell, not per step).
#[derive(Debug)]
pub struct RunStatus {
    tool: &'static str,
    started: Instant,
    workers: AtomicU64,
    finished: AtomicBool,
    total: AtomicU64,
    running: AtomicU64,
    done: AtomicU64,
    quarantined: AtomicU64,
    skipped: AtomicU64,
    reused: AtomicU64,
    attempts: AtomicU64,
    retries: AtomicU64,
    chaos_kills: AtomicU64,
    chaos_delays: AtomicU64,
    engine_steps: AtomicU64,
    engine_chunks: AtomicU64,
    progress_stderr: AtomicBool,
    cells: Mutex<BTreeMap<String, CellEntry>>,
    sinks: Sinks,
}

fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl RunStatus {
    /// A fresh registry for `tool` (the name lands in snapshots, metric
    /// labels, and progress lines).
    pub fn new(tool: &'static str) -> RunStatus {
        RunStatus {
            tool,
            started: Instant::now(),
            workers: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            total: AtomicU64::new(0),
            running: AtomicU64::new(0),
            done: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            chaos_kills: AtomicU64::new(0),
            chaos_delays: AtomicU64::new(0),
            engine_steps: AtomicU64::new(0),
            engine_chunks: AtomicU64::new(0),
            progress_stderr: AtomicBool::new(false),
            cells: Mutex::new(BTreeMap::new()),
            sinks: Sinks::default(),
        }
    }

    /// Enables per-cell progress lines on stderr (`done`/`retry`, never
    /// errors — those belong to the binary). Off by default.
    pub fn set_progress_stderr(&self, on: bool) {
        self.progress_stderr.store(on, Ordering::Relaxed);
    }

    /// Records the worker-pool size for the occupancy gauge.
    pub fn set_workers(&self, n: u64) {
        self.workers.store(n, Ordering::Relaxed);
    }

    /// Attaches the crash-safe snapshot file: an immediate first write
    /// proves the destination is writable (and gives watchers a file to
    /// tail from second zero), then one write at most every
    /// `every_secs` seconds (0 = every update) and always on
    /// [`RunStatus::finish`].
    pub fn attach_status_file(&self, path: &str, every_secs: u64) -> std::io::Result<()> {
        *lock_clean(&self.sinks.status_path) = Some(path.to_string());
        self.sinks
            .every_ms
            .store(every_secs.saturating_mul(1_000), Ordering::Relaxed);
        self.sinks.active.store(true, Ordering::Relaxed);
        pim_ckpt::atomic_write_class(
            pim_ckpt::vfs::PathClass::Telemetry,
            std::path::Path::new(path),
            self.snapshot_json().to_string_pretty().as_bytes(),
        )
    }

    /// Attaches the Prometheus text-format exposition file, rewritten
    /// atomically on the same cadence as the status snapshot.
    pub fn attach_metrics_file(&self, path: &str) -> std::io::Result<()> {
        *lock_clean(&self.sinks.metrics_path) = Some(path.to_string());
        self.sinks.active.store(true, Ordering::Relaxed);
        pim_ckpt::atomic_write_class(
            pim_ckpt::vfs::PathClass::Telemetry,
            std::path::Path::new(path),
            self.metrics_text().as_bytes(),
        )
    }

    /// Registers a pending cell. Idempotent per key: re-registering a
    /// known cell never resets its state.
    pub fn register_cell(&self, key: &str) {
        let mut cells = lock_clean(&self.cells);
        if let std::collections::btree_map::Entry::Vacant(slot) = cells.entry(key.to_string()) {
            slot.insert(CellEntry {
                state: CellState::Pending,
                attempts: 0,
                error: String::new(),
            });
            self.total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks a cell as served from a prior journal/checkpoint without
    /// running: terminal immediately, counted as `reused`.
    pub fn reuse_cell(&self, key: &str, quarantined: bool) {
        self.reused.fetch_add(1, Ordering::Relaxed);
        let state = if quarantined {
            CellState::Quarantined
        } else {
            CellState::Done
        };
        self.transition(key, state, 0, "served from journal");
        self.maybe_flush();
    }

    /// A worker claimed the cell and started its first attempt.
    pub fn cell_running(&self, key: &str) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        self.transition(key, CellState::Running, 1, "");
        self.maybe_flush();
    }

    /// A failed attempt is being retried (`attempt` is 1-based: the
    /// attempt about to run).
    pub fn cell_retrying(&self, key: &str, attempt: u32) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.transition(key, CellState::Retrying, 1, "");
        if self.progress_stderr.load(Ordering::Relaxed) {
            eprintln!("{}: retry `{key}` (attempt {attempt})", self.tool);
        }
        self.maybe_flush();
    }

    /// The chaos plan killed a worker mid-attempt.
    pub fn chaos_kill(&self) {
        self.chaos_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// The chaos plan delayed an attempt.
    pub fn chaos_delay(&self) {
        self.chaos_delays.fetch_add(1, Ordering::Relaxed);
    }

    /// The cell completed and validated.
    pub fn cell_done(&self, key: &str) {
        self.transition(key, CellState::Done, 0, "");
        if self.progress_stderr.load(Ordering::Relaxed) {
            let done = self.done.load(Ordering::Relaxed);
            let total = self.total.load(Ordering::Relaxed);
            eprintln!("{}: done `{key}` ({done}/{total})", self.tool);
        }
        self.maybe_flush();
    }

    /// The cell failed every permitted attempt.
    pub fn cell_quarantined(&self, key: &str, attempts: u32, error: &str) {
        self.transition(key, CellState::Quarantined, 0, error);
        if let Some(entry) = lock_clean(&self.cells).get_mut(key) {
            entry.attempts = attempts;
        }
        self.maybe_flush();
    }

    /// The cell never ran to completion this invocation.
    pub fn cell_skipped(&self, key: &str) {
        self.transition(key, CellState::Skipped, 0, "");
        self.maybe_flush();
    }

    /// One engine chunk finished: `steps` micro-steps executed. The
    /// hot-path feed — two atomic adds plus a rate-limited flush probe.
    pub fn engine_chunk(&self, steps: u64) {
        self.engine_steps.fetch_add(steps, Ordering::Relaxed);
        self.engine_chunks.fetch_add(1, Ordering::Relaxed);
        self.maybe_flush();
    }

    /// Marks the run finished and forces a final write of both sinks —
    /// the one write that ignores the rate limit.
    pub fn finish(&self) {
        self.finished.store(true, Ordering::Relaxed);
        if self.sinks.active.load(Ordering::Relaxed) {
            self.flush();
        }
    }

    fn transition(&self, key: &str, to: CellState, attempts_delta: u32, error: &str) {
        let mut cells = lock_clean(&self.cells);
        let entry = cells.entry(key.to_string()).or_insert_with(|| {
            // Unregistered keys self-register so a partial feed still
            // yields a coherent snapshot.
            self.total.fetch_add(1, Ordering::Relaxed);
            CellEntry {
                state: CellState::Pending,
                attempts: 0,
                error: String::new(),
            }
        });
        let from = entry.state;
        if from.terminal() {
            return; // terminal states never regress
        }
        entry.state = to;
        entry.attempts += attempts_delta;
        if !error.is_empty() {
            entry.error = error.to_string();
        }
        drop(cells);
        match (from.occupies(), to.occupies()) {
            (false, true) => {
                self.running.fetch_add(1, Ordering::Relaxed);
            }
            (true, false) => {
                self.running.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
        match to {
            CellState::Done => {
                self.done.fetch_add(1, Ordering::Relaxed);
            }
            CellState::Quarantined => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
            }
            CellState::Skipped => {
                self.skipped.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Writes both sinks if the rate limit allows; called from every
    /// feed point. Without attached sinks this is one atomic load.
    fn maybe_flush(&self) {
        if !self.sinks.active.load(Ordering::Relaxed) {
            return;
        }
        let now = self.elapsed_ms();
        let last = self.sinks.last_flush_ms.load(Ordering::Relaxed);
        if now.saturating_sub(last) < self.sinks.every_ms.load(Ordering::Relaxed) {
            return;
        }
        // One writer per interval: losing the race means someone else
        // is already writing an equally fresh snapshot.
        if self
            .sinks
            .last_flush_ms
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.flush();
    }

    /// Writes the snapshot and metrics files atomically, right now.
    /// Write failures degrade to a single stderr warning — telemetry
    /// must never kill the run it watches.
    pub fn flush(&self) {
        let status_path = lock_clean(&self.sinks.status_path).clone();
        if let Some(path) = status_path {
            let text = self.snapshot_json().to_string_pretty();
            self.write_sink(&path, text.as_bytes());
        }
        let metrics_path = lock_clean(&self.sinks.metrics_path).clone();
        if let Some(path) = metrics_path {
            let text = self.metrics_text();
            self.write_sink(&path, text.as_bytes());
        }
    }

    fn write_sink(&self, path: &str, bytes: &[u8]) {
        if let Err(e) = pim_ckpt::atomic_write_class(
            pim_ckpt::vfs::PathClass::Telemetry,
            std::path::Path::new(path),
            bytes,
        ) {
            if !self.sinks.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "{}: telemetry degraded: cannot write {path}: {e}",
                    self.tool
                );
            }
        }
    }

    /// The current `pim-status/v1` snapshot document.
    pub fn snapshot_json(&self) -> Json {
        let total = self.total.load(Ordering::Relaxed);
        let running = self.running.load(Ordering::Relaxed);
        let done = self.done.load(Ordering::Relaxed);
        let quarantined = self.quarantined.load(Ordering::Relaxed);
        let skipped = self.skipped.load(Ordering::Relaxed);
        let reused = self.reused.load(Ordering::Relaxed);
        let pending = total
            .saturating_sub(done)
            .saturating_sub(quarantined)
            .saturating_sub(skipped)
            .saturating_sub(running);
        let elapsed_ms = self.elapsed_ms();
        // Throughput counts cells this invocation actually executed:
        // journal-served cells complete in microseconds and would make
        // the ETA a lie.
        let executed = (done + quarantined).saturating_sub(reused);
        let cells_per_sec = if elapsed_ms > 0 {
            executed as f64 * 1_000.0 / elapsed_ms as f64
        } else {
            0.0
        };
        let remaining = pending + running;
        let eta_ms = if cells_per_sec > 0.0 && remaining > 0 {
            Some((remaining as f64 * 1_000.0 / cells_per_sec) as u64)
        } else {
            None
        };
        let cells = lock_clean(&self.cells);
        let running_cells: Vec<Json> = cells
            .iter()
            .filter(|(_, e)| e.state.occupies())
            .map(|(k, _)| Json::from(k.as_str()))
            .collect();
        let quarantined_cells: Vec<Json> = cells
            .iter()
            .filter(|(_, e)| e.state == CellState::Quarantined)
            .map(|(k, e)| {
                Json::obj([
                    ("cell", Json::from(k.as_str())),
                    ("attempts", Json::from(u64::from(e.attempts))),
                    ("error", Json::from(e.error.as_str())),
                ])
            })
            .collect();
        drop(cells);
        Json::obj([
            ("schema", Json::from(STATUS_SCHEMA)),
            ("tool", Json::from(self.tool)),
            (
                "finished",
                Json::from(self.finished.load(Ordering::Relaxed)),
            ),
            ("elapsed_ms", Json::from(elapsed_ms)),
            ("workers", Json::from(self.workers.load(Ordering::Relaxed))),
            (
                "cells",
                Json::obj([
                    ("total", Json::from(total)),
                    ("pending", Json::from(pending)),
                    ("running", Json::from(running)),
                    ("done", Json::from(done)),
                    ("quarantined", Json::from(quarantined)),
                    ("skipped", Json::from(skipped)),
                    ("reused", Json::from(reused)),
                ]),
            ),
            (
                "attempts",
                Json::from(self.attempts.load(Ordering::Relaxed)),
            ),
            ("retries", Json::from(self.retries.load(Ordering::Relaxed))),
            (
                "chaos",
                Json::obj([
                    (
                        "kills",
                        Json::from(self.chaos_kills.load(Ordering::Relaxed)),
                    ),
                    (
                        "delays",
                        Json::from(self.chaos_delays.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "engine",
                Json::obj([
                    (
                        "steps",
                        Json::from(self.engine_steps.load(Ordering::Relaxed)),
                    ),
                    (
                        "chunks",
                        Json::from(self.engine_chunks.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("cells_per_sec", Json::from(cells_per_sec)),
            ("eta_ms", eta_ms.map_or(Json::Null, Json::from)),
            ("running_cells", Json::Arr(running_cells)),
            ("quarantined_cells", Json::Arr(quarantined_cells)),
        ])
    }

    /// The Prometheus text-format exposition of the same counters
    /// (node_exporter textfile-collector compatible): `# HELP`/`# TYPE`
    /// headers plus one sample per metric, all labeled with the tool.
    /// When the pim-perf profiler is enabled, its per-phase breakdown
    /// is exported too. Every metric name here appears in the DESIGN
    /// "Live telemetry" table — a lint test pins that.
    pub fn metrics_text(&self) -> String {
        let tool = prom_label(self.tool);
        let mut out = String::new();
        let total = self.total.load(Ordering::Relaxed);
        let done = self.done.load(Ordering::Relaxed);
        let quarantined = self.quarantined.load(Ordering::Relaxed);
        let skipped = self.skipped.load(Ordering::Relaxed);
        let running = self.running.load(Ordering::Relaxed);
        let pending = total
            .saturating_sub(done)
            .saturating_sub(quarantined)
            .saturating_sub(skipped)
            .saturating_sub(running);
        let gauges: [(&str, &str, u64); 5] = [
            ("pim_cells_total", "Cells in the run grid.", total),
            ("pim_cells_pending", "Cells not yet claimed.", pending),
            (
                "pim_cells_running",
                "Cells currently held by a worker (occupancy).",
                running,
            ),
            (
                "pim_workers",
                "Worker threads in the pool.",
                self.workers.load(Ordering::Relaxed),
            ),
            (
                "pim_run_finished",
                "1 once the run has completed.",
                u64::from(self.finished.load(Ordering::Relaxed)),
            ),
        ];
        for (name, help, value) in gauges {
            prom_sample(&mut out, name, help, "gauge", &tool, &value.to_string());
        }
        let counters: [(&str, &str, u64); 9] = [
            (
                "pim_cells_done_total",
                "Cells completed and validated.",
                done,
            ),
            (
                "pim_cells_quarantined_total",
                "Cells that failed every permitted attempt.",
                quarantined,
            ),
            (
                "pim_cells_skipped_total",
                "Cells skipped by a raised cancel flag.",
                skipped,
            ),
            (
                "pim_cells_reused_total",
                "Cells served from a journal or checkpoint.",
                self.reused.load(Ordering::Relaxed),
            ),
            (
                "pim_cell_attempts_total",
                "Cell attempts started.",
                self.attempts.load(Ordering::Relaxed),
            ),
            (
                "pim_cell_retries_total",
                "Extra attempts beyond each cell's first.",
                self.retries.load(Ordering::Relaxed),
            ),
            (
                "pim_chaos_kills_total",
                "Chaos-injected worker kills.",
                self.chaos_kills.load(Ordering::Relaxed),
            ),
            (
                "pim_chaos_delays_total",
                "Chaos-injected attempt delays.",
                self.chaos_delays.load(Ordering::Relaxed),
            ),
            (
                "pim_engine_steps_total",
                "Engine micro-steps executed.",
                self.engine_steps.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in counters {
            prom_sample(&mut out, name, help, "counter", &tool, &value.to_string());
        }
        prom_sample(
            &mut out,
            "pim_engine_chunks_total",
            "Engine chunks completed (telemetry heartbeats).",
            "counter",
            &tool,
            &self.engine_chunks.load(Ordering::Relaxed).to_string(),
        );
        prom_sample(
            &mut out,
            "pim_run_elapsed_seconds",
            "Wall-clock seconds since the run started.",
            "gauge",
            &tool,
            &format!("{:.3}", self.elapsed_ms() as f64 / 1_000.0),
        );
        if pim_perf::is_enabled() {
            let report = pim_perf::snapshot();
            out.push_str(
                "# HELP pim_perf_phase_seconds_total Host wall time per profiled phase.\n\
                 # TYPE pim_perf_phase_seconds_total counter\n",
            );
            for p in &report.phases {
                out.push_str(&format!(
                    "pim_perf_phase_seconds_total{{tool=\"{tool}\",phase=\"{}\"}} {:.6}\n",
                    prom_label(p.name),
                    p.total_ns as f64 / 1e9
                ));
            }
            out.push_str(
                "# HELP pim_perf_phase_calls_total Closed spans per profiled phase.\n\
                 # TYPE pim_perf_phase_calls_total counter\n",
            );
            for p in &report.phases {
                out.push_str(&format!(
                    "pim_perf_phase_calls_total{{tool=\"{tool}\",phase=\"{}\"}} {}\n",
                    prom_label(p.name),
                    p.count
                ));
            }
        }
        out
    }
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn prom_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_sample(out: &mut String, name: &str, help: &str, kind: &str, tool: &str, value: &str) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name}{{tool=\"{tool}\"}} {value}\n"
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counters_track_the_state_machine() {
        let s = RunStatus::new("test");
        for key in ["a", "b", "c", "d"] {
            s.register_cell(key);
        }
        s.set_workers(2);
        s.reuse_cell("d", false);
        s.cell_running("a");
        s.cell_retrying("a", 2);
        s.cell_done("a");
        s.cell_running("b");
        s.cell_quarantined("b", 3, "boom");
        s.cell_skipped("c");
        assert_eq!(s.total.load(Ordering::Relaxed), 4);
        assert_eq!(s.done.load(Ordering::Relaxed), 2); // a + reused d
        assert_eq!(s.quarantined.load(Ordering::Relaxed), 1);
        assert_eq!(s.skipped.load(Ordering::Relaxed), 1);
        assert_eq!(s.reused.load(Ordering::Relaxed), 1);
        assert_eq!(s.running.load(Ordering::Relaxed), 0);
        assert_eq!(s.attempts.load(Ordering::Relaxed), 3);
        assert_eq!(s.retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn occupancy_rises_while_running_and_through_retries() {
        let s = RunStatus::new("test");
        s.register_cell("x");
        s.cell_running("x");
        assert_eq!(s.running.load(Ordering::Relaxed), 1);
        s.cell_retrying("x", 2);
        assert_eq!(s.running.load(Ordering::Relaxed), 1);
        s.cell_done("x");
        assert_eq!(s.running.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn terminal_states_never_regress() {
        let s = RunStatus::new("test");
        s.register_cell("x");
        s.cell_running("x");
        s.cell_done("x");
        s.cell_skipped("x"); // ignored
        assert_eq!(s.done.load(Ordering::Relaxed), 1);
        assert_eq!(s.skipped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn snapshot_roundtrips_through_the_parser() {
        let s = RunStatus::new("test");
        for key in ["a", "b", "c"] {
            s.register_cell(key);
        }
        s.set_workers(2);
        s.cell_running("a");
        s.cell_done("a");
        s.cell_running("b");
        s.cell_quarantined("b", 3, "panicked: poison");
        s.cell_running("c");
        s.chaos_kill();
        s.engine_chunk(65_536);
        let text = s.snapshot_json().to_string_pretty();
        let snap = Snapshot::parse(&text).expect("snapshot parses");
        assert_eq!(snap.tool, "test");
        assert!(!snap.finished);
        assert_eq!(snap.total, 3);
        assert_eq!(snap.done, 1);
        assert_eq!(snap.quarantined, 1);
        assert_eq!(snap.running, 1);
        assert_eq!(snap.chaos_kills, 1);
        assert_eq!(snap.engine_steps, 65_536);
        assert_eq!(snap.running_cells, vec!["c".to_string()]);
        assert_eq!(snap.quarantined_cells.len(), 1);
        assert_eq!(snap.quarantined_cells[0].cell, "b");
        assert_eq!(snap.quarantined_cells[0].error, "panicked: poison");
    }

    #[test]
    fn metrics_text_is_textfile_collector_shaped() {
        let s = RunStatus::new("test");
        s.register_cell("a");
        s.cell_running("a");
        s.cell_done("a");
        let text = s.metrics_text();
        for line in text.lines() {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE ") || line.contains("} "),
                "unexpected line: {line}"
            );
        }
        assert!(
            text.contains("pim_cells_done_total{tool=\"test\"} 1"),
            "{text}"
        );
        assert!(text.contains("# TYPE pim_cells_total gauge"), "{text}");
    }

    #[test]
    fn status_file_writes_are_complete_documents() {
        let dir = std::env::temp_dir().join(format!("pim-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.json");
        let s = RunStatus::new("test");
        s.register_cell("a");
        s.attach_status_file(path.to_str().unwrap(), 0).unwrap();
        s.cell_running("a");
        s.cell_done("a");
        s.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let snap = Snapshot::parse(&text).expect("parses");
        assert!(snap.finished);
        assert_eq!(snap.done, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
