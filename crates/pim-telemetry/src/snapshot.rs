//! Reading `pim-status/v1` snapshots back: a strict, dependency-free
//! JSON parser, the typed [`Snapshot`] view, and the one-screen render
//! `sweepwatch` draws.
//!
//! The parser is deliberately strict — any truncation, trailing bytes,
//! or malformed token is an error, never a best-effort partial value —
//! because its whole job is to distinguish "a complete snapshot the
//! atomic writer published" from "garbage". Numbers keep their raw
//! token text so `u64::MAX` round-trips exactly instead of sagging
//! through an `f64`.

/// A parsed JSON value with numbers kept as raw token text.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return self.err("expected digits");
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return self.err("expected exponent digits");
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates would need pairing; the writer
                            // never emits them, so reject rather than
                            // guess.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u codepoint".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return self.err("raw control char in string"),
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn document(&mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.err("trailing bytes after document");
        }
        Ok(v)
    }
}

/// One quarantined cell as recorded in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedCell {
    /// The cell's grid key.
    pub cell: String,
    /// Attempts consumed before quarantine.
    pub attempts: u64,
    /// The final attempt's error.
    pub error: String,
}

/// A parsed `pim-status/v1` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The producing binary ("sweeprun", "tracesim", ...).
    pub tool: String,
    /// Whether the run had completed when this was written.
    pub finished: bool,
    /// Wall milliseconds since the run started.
    pub elapsed_ms: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Cells in the grid.
    pub total: u64,
    /// Cells not yet claimed.
    pub pending: u64,
    /// Cells currently held by workers.
    pub running: u64,
    /// Cells completed and validated.
    pub done: u64,
    /// Cells that failed every permitted attempt.
    pub quarantined: u64,
    /// Cells skipped by a raised cancel flag.
    pub skipped: u64,
    /// Cells served from a journal or checkpoint.
    pub reused: u64,
    /// Attempts started.
    pub attempts: u64,
    /// Extra attempts beyond each cell's first.
    pub retries: u64,
    /// Chaos-injected worker kills.
    pub chaos_kills: u64,
    /// Chaos-injected delays.
    pub chaos_delays: u64,
    /// Engine micro-steps executed.
    pub engine_steps: u64,
    /// Engine chunks completed.
    pub engine_chunks: u64,
    /// Executed-cell throughput.
    pub cells_per_sec: f64,
    /// Projected milliseconds to completion, when computable.
    pub eta_ms: Option<u64>,
    /// Keys of cells currently held by workers.
    pub running_cells: Vec<String>,
    /// Quarantined cells with their errors.
    pub quarantined_cells: Vec<QuarantinedCell>,
}

fn field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer `{key}`"))
}

impl Snapshot {
    /// Parses a snapshot document, rejecting anything that is not a
    /// complete `pim-status/v1` object — a truncated prefix, trailing
    /// garbage, or a wrong/missing schema all fail.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let doc = Parser::new(text).document()?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing `schema`".to_string())?;
        if schema != crate::STATUS_SCHEMA {
            return Err(format!(
                "schema `{schema}` is not `{}`",
                crate::STATUS_SCHEMA
            ));
        }
        let cells = doc
            .get("cells")
            .ok_or_else(|| "missing `cells`".to_string())?;
        let chaos = doc
            .get("chaos")
            .ok_or_else(|| "missing `chaos`".to_string())?;
        let engine = doc
            .get("engine")
            .ok_or_else(|| "missing `engine`".to_string())?;
        let running_cells = match doc.get("running_cells") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "non-string running cell".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `running_cells`".to_string()),
        };
        let quarantined_cells = match doc.get("quarantined_cells") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|v| {
                    Ok(QuarantinedCell {
                        cell: v
                            .get("cell")
                            .and_then(Value::as_str)
                            .ok_or_else(|| "quarantined cell missing `cell`".to_string())?
                            .to_string(),
                        attempts: field(v, "attempts")?,
                        error: v
                            .get("error")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing `quarantined_cells`".to_string()),
        };
        Ok(Snapshot {
            tool: doc
                .get("tool")
                .and_then(Value::as_str)
                .ok_or_else(|| "missing `tool`".to_string())?
                .to_string(),
            finished: doc
                .get("finished")
                .and_then(Value::as_bool)
                .ok_or_else(|| "missing `finished`".to_string())?,
            elapsed_ms: field(&doc, "elapsed_ms")?,
            workers: field(&doc, "workers")?,
            total: field(cells, "total")?,
            pending: field(cells, "pending")?,
            running: field(cells, "running")?,
            done: field(cells, "done")?,
            quarantined: field(cells, "quarantined")?,
            skipped: field(cells, "skipped")?,
            reused: field(cells, "reused")?,
            attempts: field(&doc, "attempts")?,
            retries: field(&doc, "retries")?,
            chaos_kills: field(chaos, "kills")?,
            chaos_delays: field(chaos, "delays")?,
            engine_steps: field(engine, "steps")?,
            engine_chunks: field(engine, "chunks")?,
            cells_per_sec: doc
                .get("cells_per_sec")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            eta_ms: doc.get("eta_ms").and_then(Value::as_u64),
            running_cells,
            quarantined_cells,
        })
    }

    /// Whether the run lost cells: anything quarantined or skipped.
    pub fn degraded(&self) -> bool {
        self.quarantined > 0 || self.skipped > 0
    }

    /// The one-screen progress view `sweepwatch` draws.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let settled = self.done + self.quarantined + self.skipped;
        let state = if self.finished {
            if self.degraded() {
                "finished (degraded)"
            } else {
                "finished"
            }
        } else {
            "running"
        };
        out.push_str(&format!(
            "{} — {} — {}/{} cells settled\n",
            self.tool, state, settled, self.total
        ));
        out.push_str(&format!("  [{}]\n", progress_bar(settled, self.total, 50)));
        out.push_str(&format!(
            "  done {}  quarantined {}  skipped {}  running {}  pending {}  (reused {})\n",
            self.done, self.quarantined, self.skipped, self.running, self.pending, self.reused
        ));
        out.push_str(&format!(
            "  attempts {}  retries {}  chaos kills {}  chaos delays {}\n",
            self.attempts, self.retries, self.chaos_kills, self.chaos_delays
        ));
        out.push_str(&format!(
            "  engine {} steps in {} chunks\n",
            self.engine_steps, self.engine_chunks
        ));
        out.push_str(&format!(
            "  workers {}  elapsed {}  {:.2} cells/sec  eta {}\n",
            self.workers,
            fmt_duration_ms(self.elapsed_ms),
            self.cells_per_sec,
            self.eta_ms.map_or("-".to_string(), fmt_duration_ms),
        ));
        if !self.running_cells.is_empty() {
            out.push_str("  in flight:\n");
            for cell in &self.running_cells {
                out.push_str(&format!("    {cell}\n"));
            }
        }
        if !self.quarantined_cells.is_empty() {
            out.push_str("  quarantined:\n");
            for q in &self.quarantined_cells {
                out.push_str(&format!(
                    "    {} ({} attempts): {}\n",
                    q.cell, q.attempts, q.error
                ));
            }
        }
        out
    }
}

fn progress_bar(numer: u64, denom: u64, width: u64) -> String {
    let filled = (numer.min(denom) * width).checked_div(denom).unwrap_or(0);
    let mut bar = String::new();
    for i in 0..width {
        bar.push(if i < filled { '#' } else { '.' });
    }
    bar
}

fn fmt_duration_ms(ms: u64) -> String {
    let secs = ms / 1_000;
    if secs >= 3_600 {
        format!("{}h{:02}m", secs / 3_600, (secs % 3_600) / 60)
    } else if secs >= 60 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{}.{}s", secs, (ms % 1_000) / 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        let s = crate::RunStatus::new("t");
        s.register_cell("a");
        s.snapshot_json().to_string_pretty()
    }

    #[test]
    fn truncated_prefixes_never_parse() {
        let text = minimal();
        // Prefixes shorter than the closing `}` must fail; only
        // trailing whitespace may be lost without detection (the
        // document is still complete then, not torn).
        for cut in 0..text.trim_end().len() {
            assert!(
                Snapshot::parse(&text[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
        assert!(Snapshot::parse(&text).is_ok());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let text = minimal();
        assert!(Snapshot::parse(&format!("{text}x")).is_err());
        assert!(Snapshot::parse(&format!("{text} {{}}")).is_err());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = minimal().replace("pim-status/v1", "pim-status/v0");
        assert!(Snapshot::parse(&text).is_err());
    }

    #[test]
    fn exact_u64_values_survive() {
        let text = minimal().replace(
            "\"elapsed_ms\": 0",
            &format!("\"elapsed_ms\": {}", u64::MAX),
        );
        let snap = Snapshot::parse(&text).unwrap();
        assert_eq!(snap.elapsed_ms, u64::MAX);
    }

    #[test]
    fn render_is_one_screen_and_names_quarantined_cells() {
        let s = crate::RunStatus::new("sweeprun");
        for key in ["a", "b"] {
            s.register_cell(key);
        }
        s.cell_running("a");
        s.cell_quarantined("a", 3, "panicked: poison");
        s.cell_running("b");
        s.cell_done("b");
        s.finish();
        let snap = Snapshot::parse(&s.snapshot_json().to_string_pretty()).unwrap();
        let view = snap.render();
        assert!(view.contains("finished (degraded)"), "{view}");
        assert!(view.contains("a (3 attempts): panicked: poison"), "{view}");
        assert!(view.lines().count() < 25, "{view}");
    }

    #[test]
    fn escapes_roundtrip() {
        let s = crate::RunStatus::new("t");
        s.register_cell("weird \"cell\"\nname\tend");
        s.cell_running("weird \"cell\"\nname\tend");
        s.cell_quarantined("weird \"cell\"\nname\tend", 1, "err \\ \"quote\"");
        let snap = Snapshot::parse(&s.snapshot_json().to_string_pretty()).unwrap();
        assert_eq!(snap.quarantined_cells[0].cell, "weird \"cell\"\nname\tend");
        assert_eq!(snap.quarantined_cells[0].error, "err \\ \"quote\"");
    }
}
