//! `sweepwatch` — live one-screen view of a `pim-status/v1` file.
//!
//! ```text
//! sweepwatch [--once] [--every SECS] [--stale SECS] STATUS_FILE
//! ```
//!
//! Watch mode (default) redraws every `--every` seconds until the
//! snapshot reports `finished`. `--once` renders the current snapshot
//! and exits immediately — the scripting mode the crash-safety suite
//! drives.
//!
//! Exit codes: 0 = rendered a healthy snapshot; 1 = missing/unreadable/
//! unparseable snapshot, snapshot older than `--stale`, or a finished
//! run that quarantined or skipped cells; 2 = bad flags.

use std::time::{Duration, SystemTime};

use pim_telemetry::Snapshot;

const USAGE: &str = "usage: sweepwatch [--once] [--every SECS] [--stale SECS] STATUS_FILE";

struct Options {
    path: String,
    once: bool,
    every_secs: u64,
    stale_secs: Option<u64>,
}

fn fail2(msg: &str) -> ! {
    eprintln!("sweepwatch: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_secs(flag: &str, value: Option<String>) -> u64 {
    let Some(value) = value else {
        fail2(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(n) => n,
        Err(_) => fail2(&format!("bad value `{value}` for {flag}")),
    }
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut once = false;
    let mut every_secs = 2;
    let mut stale_secs = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--every" => every_secs = parse_secs("--every", args.next()),
            "--stale" => stale_secs = Some(parse_secs("--stale", args.next())),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => fail2(&format!("unknown flag `{other}`")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    fail2("more than one STATUS_FILE");
                }
            }
        }
    }
    let Some(path) = path else {
        fail2("missing STATUS_FILE");
    };
    if every_secs == 0 {
        fail2("--every must be at least 1");
    }
    Options {
        path,
        once,
        every_secs,
        stale_secs,
    }
}

/// Reads, checks, and renders one snapshot; `Err` carries the reason
/// the snapshot is unusable (maps to exit 1).
fn observe(opts: &Options) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(&opts.path)
        .map_err(|e| format!("cannot read {}: {e}", opts.path))?;
    let snap = Snapshot::parse(&text).map_err(|e| format!("bad snapshot {}: {e}", opts.path))?;
    if let Some(stale_secs) = opts.stale_secs {
        let age = std::fs::metadata(&opts.path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|m| SystemTime::now().duration_since(m).ok());
        match age {
            Some(age) if age.as_secs() > stale_secs && !snap.finished => {
                return Err(format!(
                    "stale snapshot {}: written {}s ago (--stale {})",
                    opts.path,
                    age.as_secs(),
                    stale_secs
                ));
            }
            _ => {}
        }
    }
    Ok(snap)
}

fn main() {
    let opts = parse_args();
    if opts.once {
        match observe(&opts) {
            Ok(snap) => {
                print!("{}", snap.render());
                let code = i32::from(snap.finished && snap.degraded());
                std::process::exit(code);
            }
            Err(e) => {
                eprintln!("sweepwatch: {e}");
                std::process::exit(1);
            }
        }
    }
    // Watch mode: redraw until the producer reports finished. A
    // not-yet-existing file is tolerated at startup (the run may still
    // be warming up); any later failure is terminal.
    let mut seen_any = false;
    loop {
        match observe(&opts) {
            Ok(snap) => {
                seen_any = true;
                // ANSI clear-screen + home keeps the view one stable screen.
                print!("\x1b[2J\x1b[H{}", snap.render());
                use std::io::Write as _;
                std::io::stdout().flush().ok();
                if snap.finished {
                    std::process::exit(i32::from(snap.degraded()));
                }
            }
            Err(e) => {
                if seen_any {
                    eprintln!("sweepwatch: {e}");
                    std::process::exit(1);
                }
                eprintln!("sweepwatch: waiting: {e}");
            }
        }
        std::thread::sleep(Duration::from_secs(opts.every_secs));
    }
}
