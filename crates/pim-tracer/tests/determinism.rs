//! Cross-engine trace determinism and ring drop-accounting.
//!
//! The contract under test: a trace file is a pure function of the
//! simulated run — the sequential engine and the parallel engine at any
//! thread count export byte-identical bytes — and the ring never drops
//! events silently.

use pim_cache::{PimSystem, SystemConfig};
use pim_sim::{Engine, ParallelEngine, Replayer};
use pim_trace::{Access, AreaMap, MemOp, PeId, StorageArea};
use pim_tracer::{
    critical_path, export_chrome, Event, EventKind, SharedTracer, Trace, TraceBuffer, TraceMeta,
};
use proptest::prelude::*;

const PES: u32 = 4;

/// A small workload with real contention: every PE hammers one shared
/// heap word under a lock, with private traffic in between.
fn workload() -> Vec<Access> {
    let map = AreaMap::standard();
    let heap = map.base(StorageArea::Heap);
    let goal = map.base(StorageArea::Goal);
    let mut trace = Vec::new();
    for round in 0..40u64 {
        for pe in 0..PES {
            let private = heap + 256 + u64::from(pe) * 64 + (round % 8);
            trace.push(Access::new(
                PeId(pe),
                MemOp::Read,
                private,
                StorageArea::Heap,
            ));
            trace.push(Access::new(
                PeId(pe),
                MemOp::Write,
                private,
                StorageArea::Heap,
            ));
            trace.push(Access::new(
                PeId(pe),
                MemOp::LockRead,
                heap,
                StorageArea::Heap,
            ));
            trace.push(Access::new(
                PeId(pe),
                MemOp::WriteUnlock,
                heap,
                StorageArea::Heap,
            ));
            trace.push(Access::new(
                PeId(pe),
                MemOp::DirectWrite,
                goal + u64::from(pe) * 8,
                StorageArea::Goal,
            ));
        }
    }
    trace
}

/// Replays the workload with a tracer attached and exports the trace.
fn run_traced(threads: usize, cap: usize) -> (String, u64) {
    let trace = workload();
    let config = SystemConfig {
        pes: PES,
        ..SystemConfig::default()
    };
    let tracer = SharedTracer::with_capacity(cap);
    let mut replayer = Replayer::from_merged(&trace, PES);
    let mut system = PimSystem::new(config);
    system.set_observer(tracer.observer());
    let makespan = if threads == 1 {
        let mut engine = Engine::new(system, PES);
        engine.set_observer(tracer.observer());
        engine.run(&mut replayer, u64::MAX).expect("run").makespan
    } else {
        let mut engine = ParallelEngine::new(system, PES);
        engine.set_threads(threads);
        engine.set_observer(tracer.observer());
        engine.run(&mut replayer, u64::MAX).expect("run").makespan
    };
    let (emitted, recorded, dropped) = (tracer.emitted(), tracer.recorded(), tracer.dropped());
    let events = tracer.take_sorted();
    let text = export_chrome(
        &events,
        &TraceMeta {
            makespan,
            pes: PES as usize,
            emitted,
            recorded: recorded as u64,
            dropped,
        },
    );
    (text, makespan)
}

#[test]
fn traces_are_byte_identical_across_thread_counts() {
    let (seq, _) = run_traced(1, 1 << 16);
    for threads in [2, 4] {
        let (par, _) = run_traced(threads, 1 << 16);
        assert_eq!(seq, par, "trace bytes differ at --threads {threads}");
    }
}

#[test]
fn capped_traces_are_still_byte_identical() {
    // Under drop pressure the retained subset is order-dependent unless
    // the ring evicts by the total event order; this pins that it does.
    let (seq, _) = run_traced(1, 100);
    let (par, _) = run_traced(4, 100);
    assert_eq!(seq, par);
    let trace = Trace::parse(&seq).expect("parse");
    assert_eq!(trace.recorded, 100);
    assert_eq!(trace.dropped, trace.emitted - trace.recorded);
    assert!(
        trace.dropped > 0,
        "workload should overflow a 100-event ring"
    );
}

#[test]
fn exported_trace_is_schema_valid() {
    let (text, makespan) = run_traced(1, 1 << 16);
    // Trace::parse already rejects events missing ph/ts/pid/tid.
    let trace = Trace::parse(&text).expect("schema-valid trace_event JSON");
    assert_eq!(trace.makespan, makespan);
    assert!(trace.events.iter().any(|e| e.ph == "X"));
    assert!(trace.events.iter().any(|e| e.ph == "i"));
    // B/E spans balance on every track and never go negative.
    let mut depth = std::collections::HashMap::new();
    for e in &trace.events {
        let d: &mut i64 = depth.entry(e.tid).or_default();
        match e.ph.as_str() {
            "B" => *d += 1,
            "E" => {
                *d -= 1;
                assert!(*d >= 0, "E before B on track {}", e.tid);
            }
            _ => {}
        }
    }
    for (tid, d) in depth {
        assert_eq!(d, 0, "unbalanced B/E on track {tid}");
    }
}

#[test]
fn critical_path_segments_sum_to_the_makespan() {
    let (text, makespan) = run_traced(1, 1 << 16);
    let trace = Trace::parse(&text).expect("parse");
    let segments = critical_path(&trace);
    let total: u64 = segments.iter().map(|s| s.cycles()).sum();
    assert_eq!(total, makespan);
    assert_eq!(segments.first().map(|s| s.start), Some(0));
    assert_eq!(segments.last().map(|s| s.end), Some(makespan));
    // Contention on the shared heap word must put lock waits on the path.
    assert!(segments.iter().any(|s| s.label.starts_with("lock wait")));
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        0u64..500,
        0u32..4,
        0u64..64,
        prop_oneof![Just(0u8), Just(1), Just(2)],
    )
        .prop_map(|(ts, pe, x, kind)| Event {
            ts,
            pe: PeId(pe),
            kind: match kind {
                0 => EventKind::Reduction,
                1 => EventKind::Gc { words: x },
                _ => EventKind::Suspension { goal: x },
            },
        })
}

proptest! {
    /// Ring-cap enforcement never drops silently: for any stream and
    /// any cap, `dropped == emitted - recorded`, the ring never exceeds
    /// its cap, and the retained set ignores arrival order.
    #[test]
    fn ring_accounting_is_exact(
        events in proptest::collection::vec(arb_event(), 0..300),
        cap in 0usize..64,
    ) {
        let mut buf = TraceBuffer::with_capacity(cap);
        for e in &events {
            buf.record(e.clone());
        }
        prop_assert_eq!(buf.emitted(), events.len() as u64);
        prop_assert!(buf.recorded() <= cap);
        prop_assert_eq!(buf.recorded(), events.len().min(cap));
        prop_assert_eq!(buf.dropped(), buf.emitted() - buf.recorded() as u64);

        // Same multiset, reversed arrival: identical retained set.
        let mut rev = TraceBuffer::with_capacity(cap);
        for e in events.iter().rev() {
            rev.record(e.clone());
        }
        prop_assert_eq!(buf.into_sorted(), rev.into_sorted());
    }
}
