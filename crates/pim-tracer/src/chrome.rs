//! Chrome `trace_event` export, loadable in Perfetto / `chrome://tracing`.
//!
//! Layout: one process (`pid` 1), the bus on `tid` 0, PE *i* on
//! `tid` *i + 1*. Bus holds are `B`/`E` pairs on the bus track (the bus
//! is serial, so they balance); PE-side spans (full bus transactions
//! including queueing, and lock waits) are `X` complete events; points
//! are `i` instants; goal-queue depth is a `C` counter per PE.
//!
//! The file is **byte-deterministic**: every event renders to one
//! compact JSON line and the lines are sorted by
//! `(ts, tid, phase rank, text)`, so the arrival order of the events —
//! which differs between the sequential and the parallel engine — never
//! reaches the output. Phase rank puts `M` metadata first and `E`
//! before `B` so that back-to-back bus holds stay balanced at equal
//! timestamps.

use crate::event::{Event, EventKind};
use pim_obs::Json;

/// Envelope counters written to `otherData` and read back by `pimtrace`.
#[derive(Debug, Clone, Copy)]
pub struct TraceMeta {
    /// The run's makespan in cycles (max PE clock).
    pub makespan: u64,
    /// Number of PEs simulated (fixes the track set even if some PEs
    /// emitted nothing).
    pub pes: usize,
    /// Events offered to the ring.
    pub emitted: u64,
    /// Events retained and exported.
    pub recorded: u64,
    /// Events discarded at the ring cap (`emitted - recorded`).
    pub dropped: u64,
}

/// Version tag in `otherData.schema`.
pub const SCHEMA: &str = "pim-trace/v1";

fn phase_rank(ph: &str) -> u8 {
    match ph {
        "M" => 0,
        "E" => 1,
        "B" => 2,
        "X" => 3,
        "i" => 4,
        _ => 5, // "C" and anything future
    }
}

struct Line {
    ts: u64,
    tid: u64,
    rank: u8,
    text: String,
}

fn line(ph: &str, ts: u64, tid: u64, name: &str, extra: Vec<(&str, Json)>) -> Line {
    let mut j = Json::obj([
        ("ph", Json::from(ph)),
        ("pid", Json::from(1u64)),
        ("tid", Json::from(tid)),
        ("ts", Json::from(ts)),
        ("name", Json::from(name)),
    ]);
    for (k, v) in extra {
        j.push(k, v);
    }
    Line {
        ts,
        tid,
        rank: phase_rank(ph),
        text: j.to_string_compact(),
    }
}

fn args(pairs: Vec<(&str, Json)>) -> (&'static str, Json) {
    ("args", Json::obj(pairs))
}

fn render(ev: &Event, out: &mut Vec<Line>) {
    let tid = u64::from(ev.pe.0) + 1;
    match &ev.kind {
        EventKind::Transition { area, from, to } => {
            let name = format!("{}->{} {}", from.label(), to.label(), area.label());
            out.push(line(
                "i",
                ev.ts,
                tid,
                &name,
                vec![
                    ("s", Json::from("t")),
                    args(vec![
                        ("area", Json::from(area.label())),
                        ("from", Json::from(from.label())),
                        ("to", Json::from(to.label())),
                    ]),
                ],
            ));
        }
        EventKind::Bus {
            op,
            area,
            wait,
            hold,
        } => {
            let name = format!("bus {} {}", op.mnemonic(), area.label());
            out.push(line(
                "X",
                ev.ts,
                tid,
                &name,
                vec![
                    ("dur", Json::from(wait + hold)),
                    args(vec![
                        ("op", Json::from(op.mnemonic())),
                        ("area", Json::from(area.label())),
                        ("wait", Json::from(*wait)),
                        ("hold", Json::from(*hold)),
                    ]),
                ],
            ));
            let hold_name = format!("{} {}", op.mnemonic(), area.label());
            let pe_args = || {
                args(vec![
                    ("pe", Json::from(u64::from(ev.pe.0))),
                    ("op", Json::from(op.mnemonic())),
                    ("area", Json::from(area.label())),
                ])
            };
            out.push(line("B", ev.ts + wait, 0, &hold_name, vec![pe_args()]));
            out.push(line(
                "E",
                ev.ts + wait + hold,
                0,
                &hold_name,
                vec![pe_args()],
            ));
        }
        EventKind::LockWait { addr, area, dur } => {
            let name = format!("lock wait {}", area.label());
            out.push(line(
                "X",
                ev.ts,
                tid,
                &name,
                vec![
                    ("dur", Json::from(*dur)),
                    args(vec![
                        ("addr", Json::from(*addr)),
                        ("area", Json::from(area.label())),
                        ("until", Json::from(ev.ts + dur)),
                    ]),
                ],
            ));
        }
        EventKind::LockAcquired { addr, area } => {
            out.push(line(
                "i",
                ev.ts,
                tid,
                "lock acquire",
                vec![
                    ("s", Json::from("t")),
                    args(vec![
                        ("addr", Json::from(*addr)),
                        ("area", Json::from(area.label())),
                    ]),
                ],
            ));
        }
        EventKind::LockReleased { addr, area, woken } => {
            out.push(line(
                "i",
                ev.ts,
                tid,
                "lock release",
                vec![
                    ("s", Json::from("t")),
                    args(vec![
                        ("addr", Json::from(*addr)),
                        ("area", Json::from(area.label())),
                        ("woken", Json::from(u64::from(*woken))),
                    ]),
                ],
            ));
        }
        EventKind::Reduction => {
            out.push(line(
                "i",
                ev.ts,
                tid,
                "reduce",
                vec![("s", Json::from("t"))],
            ));
        }
        EventKind::Suspension { goal } => {
            out.push(line(
                "i",
                ev.ts,
                tid,
                "suspend",
                vec![
                    ("s", Json::from("t")),
                    args(vec![("goal", Json::from(*goal))]),
                ],
            ));
        }
        EventKind::Resumption { goal } => {
            out.push(line(
                "i",
                ev.ts,
                tid,
                "resume",
                vec![
                    ("s", Json::from("t")),
                    args(vec![("goal", Json::from(*goal))]),
                ],
            ));
        }
        EventKind::Gc { words } => {
            out.push(line(
                "i",
                ev.ts,
                tid,
                "gc",
                vec![
                    ("s", Json::from("t")),
                    args(vec![("words", Json::from(*words))]),
                ],
            ));
        }
        EventKind::GoalDepth { depth } => {
            let name = format!("goals pe{}", ev.pe.0);
            out.push(line(
                "C",
                ev.ts,
                tid,
                &name,
                vec![args(vec![("depth", Json::from(*depth))])],
            ));
        }
        EventKind::FaultInjected { kind } => {
            let name = format!("fault {kind}");
            out.push(line(
                "i",
                ev.ts,
                tid,
                &name,
                vec![
                    ("s", Json::from("t")),
                    args(vec![("kind", Json::from(*kind))]),
                ],
            ));
        }
        EventKind::FaultRecovered { faults, penalty } => {
            out.push(line(
                "i",
                ev.ts,
                tid,
                "fault recovery",
                vec![
                    ("s", Json::from("t")),
                    args(vec![
                        ("faults", Json::from(u64::from(*faults))),
                        ("penalty", Json::from(*penalty)),
                    ]),
                ],
            ));
        }
        EventKind::Watchdog { budget } => {
            out.push(line(
                "i",
                ev.ts,
                tid,
                "watchdog",
                vec![
                    ("s", Json::from("t")),
                    args(vec![("budget", Json::from(*budget))]),
                ],
            ));
        }
        EventKind::Deadlock { pes } => {
            let list = Json::arr(pes.iter().map(|p| Json::from(u64::from(p.0))));
            out.push(line(
                "i",
                ev.ts,
                tid,
                "deadlock",
                vec![("s", Json::from("t")), args(vec![("pes", list)])],
            ));
        }
    }
}

/// Renders events plus track metadata to the full trace-file text.
pub fn export_chrome(events: &[Event], meta: &TraceMeta) -> String {
    let mut lines: Vec<Line> = Vec::with_capacity(events.len() + meta.pes + 2);
    lines.push(line(
        "M",
        0,
        0,
        "process_name",
        vec![args(vec![("name", Json::from("pim-sim"))])],
    ));
    lines.push(line(
        "M",
        0,
        0,
        "thread_name",
        vec![args(vec![("name", Json::from("bus"))])],
    ));
    for pe in 0..meta.pes {
        let name = format!("PE {pe}");
        lines.push(line(
            "M",
            0,
            pe as u64 + 1,
            "thread_name",
            vec![args(vec![("name", Json::from(name.as_str()))])],
        ));
    }
    for ev in events {
        render(ev, &mut lines);
    }
    lines.sort_by(|a, b| (a.ts, a.tid, a.rank, &a.text).cmp(&(b.ts, b.tid, b.rank, &b.text)));

    let other = Json::obj([
        ("schema", Json::from(SCHEMA)),
        ("makespan", Json::from(meta.makespan)),
        ("pes", Json::from(meta.pes)),
        ("emitted", Json::from(meta.emitted)),
        ("recorded", Json::from(meta.recorded)),
        ("dropped", Json::from(meta.dropped)),
    ]);

    let mut out = String::new();
    out.push_str("{\n\"traceEvents\": [\n");
    for (i, l) in lines.iter().enumerate() {
        out.push_str(&l.text);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"displayTimeUnit\": \"ns\",\n\"otherData\": ");
    out.push_str(&other.to_string_compact());
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::{MemOp, PeId, StorageArea};

    fn meta(pes: usize, n: u64) -> TraceMeta {
        TraceMeta {
            makespan: 100,
            pes,
            emitted: n,
            recorded: n,
            dropped: 0,
        }
    }

    #[test]
    fn export_is_arrival_order_independent() {
        let a = Event {
            ts: 5,
            pe: PeId(0),
            kind: EventKind::Reduction,
        };
        let b = Event {
            ts: 3,
            pe: PeId(1),
            kind: EventKind::Bus {
                op: MemOp::Read,
                area: StorageArea::Heap,
                wait: 2,
                hold: 7,
            },
        };
        let fwd = export_chrome(&[a.clone(), b.clone()], &meta(2, 2));
        let rev = export_chrome(&[b, a], &meta(2, 2));
        assert_eq!(fwd, rev);
    }

    #[test]
    fn bus_holds_balance_even_back_to_back() {
        // Hold [7,10) followed by hold [10,12): at ts 10 the E line must
        // sort before the B line or the bus track nests wrongly.
        let first = Event {
            ts: 5,
            pe: PeId(0),
            kind: EventKind::Bus {
                op: MemOp::Read,
                area: StorageArea::Heap,
                wait: 2,
                hold: 3,
            },
        };
        let second = Event {
            ts: 10,
            pe: PeId(1),
            kind: EventKind::Bus {
                op: MemOp::Write,
                area: StorageArea::Goal,
                wait: 0,
                hold: 2,
            },
        };
        let text = export_chrome(&[second, first], &meta(2, 2));
        let e_at_10 = text
            .lines()
            .position(|l| l.contains("\"ph\":\"E\"") && l.contains("\"ts\":10"))
            .expect("E line");
        let b_at_10 = text
            .lines()
            .position(|l| l.contains("\"ph\":\"B\"") && l.contains("\"ts\":10"))
            .expect("B line");
        assert!(e_at_10 < b_at_10, "E must precede B at equal ts");
    }

    #[test]
    fn export_names_every_track() {
        let text = export_chrome(&[], &meta(3, 0));
        assert!(text.contains("\"name\":\"bus\""));
        for pe in 0..3 {
            assert!(text.contains(&format!("\"name\":\"PE {pe}\"")));
        }
        assert!(text.contains("\"schema\":\"pim-trace/v1\""));
    }
}
