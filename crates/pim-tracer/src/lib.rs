//! Bounded, deterministic event tracing for the PIM cache simulator.
//!
//! Where `pim-obs` aggregates (histograms, matrices, totals), this
//! crate records *individual* cycle-stamped events — coherence
//! transitions, bus transactions with their queueing and hold spans,
//! lock waits with the release that ended them, KL1 reductions /
//! suspensions / resumptions, GC, and fault chains — into a bounded
//! ring and exports them as Chrome `trace_event` JSON that loads in
//! Perfetto or `chrome://tracing`.
//!
//! The three properties everything here is built around:
//!
//! 1. **Determinism.** A trace is a pure function of the simulated
//!    run: the ring retains the smallest events under a total order
//!    (never "the most recent", which depends on arrival order) and
//!    the exporter sorts before writing, so `--threads 1` and
//!    `--threads 8` produce byte-identical files.
//! 2. **Bounded and honest.** The ring never reallocates in steady
//!    state and never drops silently: `dropped = emitted - recorded`
//!    is carried in the file's `otherData`.
//! 3. **Causally linked.** Spans carry enough identity to chain: a
//!    lock-wait span names the address and the cycle of the unlock
//!    that ended it; a suspension and its resumption share the goal
//!    record's address; a miss's state transition shares its issue
//!    cycle with the bus span that serviced it. `pimtrace
//!    critical-path` uses these links to chase the makespan across
//!    PEs.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod analyze;
pub mod chrome;
pub mod event;
pub mod read;

pub use analyze::{
    bus_occupancy_report, critical_path, critical_path_report, diff, is_report,
    lock_hotspots_report, report_diff, DiffReport, Segment,
};
pub use chrome::{export_chrome, TraceMeta, SCHEMA};
pub use event::{Event, EventKind, SharedTracer, TraceBuffer, DEFAULT_CAP};
pub use read::{parse_json, ChromeEvent, JsonExt, Trace};

/// Parses the `--trace FILE[:cap=N]` argument form shared by the
/// simulator binaries: an optional trailing `:cap=N` sets the ring
/// capacity, everything before it is the output path. A thin wrapper
/// over [`pim_ckpt::spec::parse_file_spec`], so every file-spec flag in
/// the workspace emits the same named-flag diagnostics.
pub fn parse_trace_spec(spec: &str) -> Result<(String, usize), String> {
    let parsed = pim_ckpt::spec::parse_file_spec("trace", spec, &["cap"])?;
    let cap = parsed
        .get_u64("trace", "cap")?
        .map_or(DEFAULT_CAP, |n| n as usize);
    Ok((parsed.path, cap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_spec_defaults_and_overrides() {
        assert_eq!(
            parse_trace_spec("out.json"),
            Ok(("out.json".into(), DEFAULT_CAP))
        );
        assert_eq!(
            parse_trace_spec("out.json:cap=512"),
            Ok(("out.json".into(), 512))
        );
        // Windows-style paths keep their drive colon.
        assert_eq!(
            parse_trace_spec("C:/t/out.json:cap=1"),
            Ok(("C:/t/out.json".into(), 1))
        );
        assert!(parse_trace_spec("out.json:cap=x").is_err());
        assert!(parse_trace_spec(":cap=5").is_err());
    }
}
