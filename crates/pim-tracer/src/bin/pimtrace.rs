//! `pimtrace` — offline analysis of saved simulator traces.
//!
//! ```text
//! pimtrace critical-path FILE [--top N]    top-N critical-path segments
//! pimtrace locks FILE [--top N]            lock-contention hotspots
//! pimtrace bus FILE [--windows N]          bus-occupancy timeline
//! pimtrace diff A B [--max N]              event-by-event comparison
//! ```
//!
//! `diff` accepts either two Chrome trace files or two `pim-repro/v1`
//! report documents (as written by `kl1run --profile`, `tracesim
//! --report`, and `repro --json`). Reports are compared modulo the
//! `checkpoint` provenance block, so a resumed run and its
//! uninterrupted twin diff clean.
//!
//! Exit status: 0 on success (for `diff`: inputs identical), 1 when
//! `diff` finds differences, 2 on usage or I/O errors.

use pim_tracer::{
    bus_occupancy_report, critical_path_report, diff, is_report, lock_hotspots_report, report_diff,
    Trace,
};
use std::process::ExitCode;

const USAGE: &str = "usage: pimtrace <critical-path|locks|bus|diff> FILE... [options]
  critical-path FILE [--top N]   top-N critical-path segments of the makespan
  locks FILE [--top N]           lock-contention hotspots by address
  bus FILE [--windows N]         bus-occupancy timeline
  diff A B [--max N]             compare two traces event-by-event, or two
                                 pim-repro/v1 reports modulo the checkpoint block

exit codes:
  0  success; for diff: the inputs are identical (modulo the checkpoint
     block for reports), stated in the one-line summary on stdout
  1  diff found differences (first --max are listed), or a file could
     not be read or parsed
  2  bad flags or usage, with the flag named on stderr";

fn fail(msg: &str) -> ExitCode {
    eprintln!("pimtrace: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Trace::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Splits argv into positional arguments and one optional numeric flag.
fn split_args(args: &[String], flag: &str, default: usize) -> Result<(Vec<String>, usize), String> {
    let mut positional = Vec::new();
    let mut value = default;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == flag {
            i += 1;
            let v = args.get(i).ok_or_else(|| format!("{flag} needs a value"))?;
            value = v
                .parse()
                .map_err(|_| format!("bad value for {flag}: {v:?}"))?;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag {a:?}"));
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Ok((positional, value))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return fail("missing subcommand");
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "critical-path" => {
            let (files, top) = match split_args(rest, "--top", 10) {
                Ok(v) => v,
                Err(e) => return fail(&e),
            };
            let [file] = files.as_slice() else {
                return fail("critical-path takes exactly one FILE");
            };
            match load(file) {
                Ok(trace) => {
                    print!("{}", critical_path_report(&trace, top));
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "locks" => {
            let (files, top) = match split_args(rest, "--top", 20) {
                Ok(v) => v,
                Err(e) => return fail(&e),
            };
            let [file] = files.as_slice() else {
                return fail("locks takes exactly one FILE");
            };
            match load(file) {
                Ok(trace) => {
                    print!("{}", lock_hotspots_report(&trace, top));
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "bus" => {
            let (files, windows) = match split_args(rest, "--windows", 40) {
                Ok(v) => v,
                Err(e) => return fail(&e),
            };
            let [file] = files.as_slice() else {
                return fail("bus takes exactly one FILE");
            };
            match load(file) {
                Ok(trace) => {
                    print!("{}", bus_occupancy_report(&trace, windows));
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "diff" => {
            let (files, max) = match split_args(rest, "--max", 20) {
                Ok(v) => v,
                Err(e) => return fail(&e),
            };
            let [a, b] = files.as_slice() else {
                return fail("diff takes exactly two FILEs");
            };
            let read = |path: &str| {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
            };
            let (text_a, text_b) = match (read(a), read(b)) {
                (Ok(ta), Ok(tb)) => (ta, tb),
                (Err(e), _) | (_, Err(e)) => return fail(&e),
            };
            let report = if is_report(&text_a) && is_report(&text_b) {
                report_diff(&text_a, &text_b, max)
            } else {
                let parse =
                    |path: &str, text: &str| Trace::parse(text).map_err(|e| format!("{path}: {e}"));
                let (ta, tb) = match (parse(a, &text_a), parse(b, &text_b)) {
                    (Ok(ta), Ok(tb)) => (ta, tb),
                    (Err(e), _) | (_, Err(e)) => return fail(&e),
                };
                diff(&ta, &tb, max)
            };
            print!("{}", report.text);
            if report.differences == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        other => fail(&format!("unknown subcommand {other:?}")),
    }
}
