//! The trace event model and the bounded, deterministic ring buffer.
//!
//! Every hook of [`pim_obs::Observer`] maps onto one [`Event`], stamped
//! with the simulated cycle at which it happened (`ts`). Events carry a
//! derived **total order** — `(ts, pe, kind)` — and the ring keeps the
//! `cap` *smallest* events under that order rather than the most
//! recently arrived ones. This makes the retained set a pure function
//! of the emitted multiset: the parallel engine may deliver events in a
//! different arrival order than the sequential engine, but both retain
//! (and later export) byte-identical traces.
//!
//! Overflow is never silent: [`TraceBuffer::emitted`] counts every event
//! offered and [`TraceBuffer::dropped`] is always `emitted - recorded`.

use pim_obs::{CohState, Observer};
use pim_trace::{Addr, MemOp, PeId, StorageArea};
use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Default ring capacity when `--trace FILE` gives no `:cap=N` suffix.
pub const DEFAULT_CAP: usize = 1 << 20;

/// What happened. Ordered so [`Event`] has a total order; the variant
/// order here is part of the on-disk sort (ties on `(ts, pe)` resolve
/// by kind), so append new variants at the point that reads best in a
/// timeline, not necessarily at the end.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A coherence-state transition of one cached block. Instant.
    ///
    /// Causal link: a transition stamped with cycle `c` on PE `p` was
    /// produced by the memory access *issued* at `c` by `p`; if a
    /// [`EventKind::Bus`] span on the same PE starts at the same `c`,
    /// that bus transaction serviced this miss.
    Transition {
        /// Storage area of the block.
        area: StorageArea,
        /// State before the access.
        from: CohState,
        /// State after the access.
        to: CohState,
    },
    /// A bus transaction span: `[ts, ts + wait + hold)`, where `wait`
    /// is queueing delay behind earlier holders and `hold` is this
    /// transaction's own bus occupancy `[ts + wait, ts + wait + hold)`.
    Bus {
        /// The operation that went to the bus.
        op: MemOp,
        /// Storage area of the access.
        area: StorageArea,
        /// Queueing cycles before the grant.
        wait: u64,
        /// Bus-hold cycles of the transaction itself.
        hold: u64,
    },
    /// A lock-wait span `[ts, ts + dur)`: the PE stalled on a locked
    /// word until the holder's unlock at `ts + dur` woke it.
    ///
    /// Causal link: the matching [`EventKind::LockReleased`] has the
    /// same `addr` and cycle `ts + dur`; its PE is the lock holder the
    /// critical path continues on.
    LockWait {
        /// The locked word.
        addr: Addr,
        /// Storage area of the word.
        area: StorageArea,
        /// Stall length in cycles.
        dur: u64,
    },
    /// A successful `LR` lock-read completed at `ts`. Instant.
    LockAcquired {
        /// The locked word.
        addr: Addr,
        /// Storage area of the word.
        area: StorageArea,
    },
    /// A `UW`/`U` unlock completed at `ts`, waking `woken` waiters.
    /// Instant.
    LockReleased {
        /// The unlocked word.
        addr: Addr,
        /// Storage area of the word.
        area: StorageArea,
        /// How many suspended PEs this unlock woke.
        woken: u32,
    },
    /// One KL1 goal reduction committed. Instant.
    Reduction,
    /// A goal suspended on an unbound variable. Instant.
    ///
    /// Causal link: `goal` is the goal-record address; the
    /// [`EventKind::Resumption`] that carries the same `goal` is the
    /// binder waking this suspension.
    Suspension {
        /// Goal-record address (the suspension's identity).
        goal: Addr,
    },
    /// A suspended goal was resumed by a binding. Instant.
    Resumption {
        /// Goal-record address of the resumed goal.
        goal: Addr,
    },
    /// A local garbage collection finished at `ts`. Instant.
    Gc {
        /// Words copied to the new semispace.
        words: u64,
    },
    /// Goal-queue depth sample. Rendered as a counter track.
    GoalDepth {
        /// Queue depth after the sampled scheduler step.
        depth: u64,
    },
    /// A fault was injected. Instant.
    FaultInjected {
        /// Fault kind label from `pim-fault`.
        kind: &'static str,
    },
    /// A fault-recovery sequence completed at `ts`. Instant.
    FaultRecovered {
        /// Faults absorbed by this recovery.
        faults: u32,
        /// Total recovery penalty in cycles.
        penalty: u64,
    },
    /// The watchdog fired for a stalled PE. Instant.
    Watchdog {
        /// Cycle budget that was exceeded.
        budget: u64,
    },
    /// Deadlock detected among `pes`. Instant, attributed to the
    /// lowest-numbered participant.
    Deadlock {
        /// All PEs in the cycle.
        pes: Vec<PeId>,
    },
}

/// One cycle-stamped trace event.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Simulated cycle: the instant itself, or a span's start.
    pub ts: u64,
    /// The PE the event belongs to.
    pub pe: PeId,
    /// What happened.
    pub kind: EventKind,
}

/// Bounded event store keeping the `cap` smallest events by the total
/// `(ts, pe, kind)` order.
///
/// Steady state allocates nothing: the backing heap grows to `cap + 1`
/// slots and stays there; past capacity every insert is one push and
/// one pop. (The one exception is [`EventKind::Deadlock`]'s PE list —
/// a terminal, at-most-once event.)
#[derive(Debug)]
pub struct TraceBuffer {
    cap: usize,
    heap: BinaryHeap<Event>,
    emitted: u64,
}

impl TraceBuffer {
    /// A buffer retaining at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        TraceBuffer {
            cap,
            // +1: record() pushes before popping the largest back out.
            heap: BinaryHeap::with_capacity(cap.saturating_add(1)),
            emitted: 0,
        }
    }

    /// Offers one event; past capacity the largest event (latest by the
    /// total order) is discarded and counted in [`TraceBuffer::dropped`].
    pub fn record(&mut self, ev: Event) {
        self.emitted += 1;
        if self.cap == 0 {
            return;
        }
        self.heap.push(ev);
        if self.heap.len() > self.cap {
            self.heap.pop();
        }
    }

    /// Events offered so far, recorded or not.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events currently retained.
    pub fn recorded(&self) -> usize {
        self.heap.len()
    }

    /// Events discarded at the ring cap: always `emitted - recorded`.
    pub fn dropped(&self) -> u64 {
        self.emitted - self.heap.len() as u64
    }

    /// Drains the retained events in ascending `(ts, pe, kind)` order.
    pub fn into_sorted(self) -> Vec<Event> {
        self.heap.into_sorted_vec()
    }

    /// Checkpoint hook: serializes the capacity, the emitted count, and
    /// the retained events in ascending order (sorting makes the wire
    /// form independent of heap layout, hence of arrival order).
    pub fn save_ckpt(&self, w: &mut pim_ckpt::Writer) {
        w.put_u64(self.cap as u64);
        w.put_u64(self.emitted);
        let mut events: Vec<Event> = self.heap.iter().cloned().collect();
        events.sort();
        w.put_len(events.len());
        for ev in &events {
            save_event(ev, w);
        }
    }

    /// Checkpoint hook: restores a buffer saved by
    /// [`TraceBuffer::save_ckpt`].
    ///
    /// # Errors
    ///
    /// [`pim_ckpt::CkptError::Mismatch`] when the ring capacity disagrees
    /// (the capacity comes from the `--trace` spec and must match across
    /// resume); [`pim_ckpt::CkptError::Corrupt`] on impossible counts or
    /// unknown event encodings.
    pub fn restore_ckpt(
        &mut self,
        r: &mut pim_ckpt::Reader<'_>,
    ) -> Result<(), pim_ckpt::CkptError> {
        let cap = r.get_u64()? as usize;
        if cap != self.cap {
            return Err(pim_ckpt::CkptError::Mismatch {
                detail: format!("trace ring capacity {} vs checkpoint {cap}", self.cap),
            });
        }
        self.emitted = r.get_u64()?;
        let n = r.get_len()?;
        if n > cap || (n as u64) > self.emitted {
            return Err(pim_ckpt::CkptError::Corrupt {
                detail: format!(
                    "trace ring retains {n} events with cap {cap}, emitted {}",
                    self.emitted
                ),
            });
        }
        self.heap.clear();
        for _ in 0..n {
            self.heap.push(read_event(r)?);
        }
        Ok(())
    }
}

fn save_event(ev: &Event, w: &mut pim_ckpt::Writer) {
    w.put_u64(ev.ts);
    w.put_u32(ev.pe.0);
    match &ev.kind {
        EventKind::Transition { area, from, to } => {
            w.put_u8(0);
            w.put_u8(area.index() as u8);
            w.put_u8(from.index() as u8);
            w.put_u8(to.index() as u8);
        }
        EventKind::Bus {
            op,
            area,
            wait,
            hold,
        } => {
            w.put_u8(1);
            w.put_u8(op_tag(*op));
            w.put_u8(area.index() as u8);
            w.put_u64(*wait);
            w.put_u64(*hold);
        }
        EventKind::LockWait { addr, area, dur } => {
            w.put_u8(2);
            w.put_u64(*addr);
            w.put_u8(area.index() as u8);
            w.put_u64(*dur);
        }
        EventKind::LockAcquired { addr, area } => {
            w.put_u8(3);
            w.put_u64(*addr);
            w.put_u8(area.index() as u8);
        }
        EventKind::LockReleased { addr, area, woken } => {
            w.put_u8(4);
            w.put_u64(*addr);
            w.put_u8(area.index() as u8);
            w.put_u32(*woken);
        }
        EventKind::Reduction => w.put_u8(5),
        EventKind::Suspension { goal } => {
            w.put_u8(6);
            w.put_u64(*goal);
        }
        EventKind::Resumption { goal } => {
            w.put_u8(7);
            w.put_u64(*goal);
        }
        EventKind::Gc { words } => {
            w.put_u8(8);
            w.put_u64(*words);
        }
        EventKind::GoalDepth { depth } => {
            w.put_u8(9);
            w.put_u64(*depth);
        }
        EventKind::FaultInjected { kind } => {
            w.put_u8(10);
            w.put_str(kind);
        }
        EventKind::FaultRecovered { faults, penalty } => {
            w.put_u8(11);
            w.put_u32(*faults);
            w.put_u64(*penalty);
        }
        EventKind::Watchdog { budget } => {
            w.put_u8(12);
            w.put_u64(*budget);
        }
        EventKind::Deadlock { pes } => {
            w.put_u8(13);
            w.put_len(pes.len());
            for pe in pes {
                w.put_u32(pe.0);
            }
        }
    }
}

fn read_event(r: &mut pim_ckpt::Reader<'_>) -> Result<Event, pim_ckpt::CkptError> {
    let ts = r.get_u64()?;
    let pe = PeId(r.get_u32()?);
    let kind = match r.get_u8()? {
        0 => EventKind::Transition {
            area: area_from_tag(r.get_u8()?)?,
            from: coh_from_tag(r.get_u8()?)?,
            to: coh_from_tag(r.get_u8()?)?,
        },
        1 => EventKind::Bus {
            op: op_from_tag(r.get_u8()?)?,
            area: area_from_tag(r.get_u8()?)?,
            wait: r.get_u64()?,
            hold: r.get_u64()?,
        },
        2 => EventKind::LockWait {
            addr: r.get_u64()?,
            area: area_from_tag(r.get_u8()?)?,
            dur: r.get_u64()?,
        },
        3 => EventKind::LockAcquired {
            addr: r.get_u64()?,
            area: area_from_tag(r.get_u8()?)?,
        },
        4 => EventKind::LockReleased {
            addr: r.get_u64()?,
            area: area_from_tag(r.get_u8()?)?,
            woken: r.get_u32()?,
        },
        5 => EventKind::Reduction,
        6 => EventKind::Suspension { goal: r.get_u64()? },
        7 => EventKind::Resumption { goal: r.get_u64()? },
        8 => EventKind::Gc {
            words: r.get_u64()?,
        },
        9 => EventKind::GoalDepth {
            depth: r.get_u64()?,
        },
        10 => EventKind::FaultInjected {
            kind: pim_ckpt::intern(r.get_str()?),
        },
        11 => EventKind::FaultRecovered {
            faults: r.get_u32()?,
            penalty: r.get_u64()?,
        },
        12 => EventKind::Watchdog {
            budget: r.get_u64()?,
        },
        13 => {
            let n = r.get_len()?;
            let pes = (0..n)
                .map(|_| r.get_u32().map(PeId))
                .collect::<Result<Vec<_>, _>>()?;
            EventKind::Deadlock { pes }
        }
        other => {
            return Err(pim_ckpt::CkptError::Corrupt {
                detail: format!("unknown trace event tag {other}"),
            })
        }
    };
    Ok(Event { ts, pe, kind })
}

fn op_tag(op: MemOp) -> u8 {
    match MemOp::ALL.iter().position(|&o| o == op) {
        Some(i) => i as u8,
        None => unreachable!("MemOp::ALL covers every variant"),
    }
}

fn op_from_tag(tag: u8) -> Result<MemOp, pim_ckpt::CkptError> {
    MemOp::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| pim_ckpt::CkptError::Corrupt {
            detail: format!("unknown memory op tag {tag}"),
        })
}

fn area_from_tag(tag: u8) -> Result<StorageArea, pim_ckpt::CkptError> {
    StorageArea::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| pim_ckpt::CkptError::Corrupt {
            detail: format!("unknown storage area tag {tag}"),
        })
}

fn coh_from_tag(tag: u8) -> Result<CohState, pim_ckpt::CkptError> {
    CohState::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| pim_ckpt::CkptError::Corrupt {
            detail: format!("unknown coherence state tag {tag}"),
        })
}

/// Clonable handle to one shared [`TraceBuffer`], in the same style as
/// `pim_obs::SharedMetrics`: every component that wants to feed the
/// tracer gets its own boxed clone via [`SharedTracer::observer`].
#[derive(Debug, Clone)]
pub struct SharedTracer {
    buf: Rc<RefCell<TraceBuffer>>,
}

impl SharedTracer {
    /// A tracer whose ring retains at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        SharedTracer {
            buf: Rc::new(RefCell::new(TraceBuffer::with_capacity(cap))),
        }
    }

    /// A boxed observer clone feeding this tracer.
    pub fn observer(&self) -> Box<dyn Observer> {
        Box::new(self.clone())
    }

    /// Events offered so far.
    pub fn emitted(&self) -> u64 {
        self.buf.borrow().emitted()
    }

    /// Events currently retained.
    pub fn recorded(&self) -> usize {
        self.buf.borrow().recorded()
    }

    /// Events discarded at the ring cap.
    pub fn dropped(&self) -> u64 {
        self.buf.borrow().dropped()
    }

    /// Drains the buffer into ascending event order. Other clones keep
    /// working but feed a now-empty buffer; drain once, after the run.
    pub fn take_sorted(&self) -> Vec<Event> {
        let cap = self.buf.borrow().cap;
        self.buf
            .replace(TraceBuffer::with_capacity(cap))
            .into_sorted()
    }

    fn push(&mut self, ts: u64, pe: PeId, kind: EventKind) {
        self.buf.borrow_mut().record(Event { ts, pe, kind });
    }

    /// Checkpoint hook: serializes the shared ring. See
    /// [`TraceBuffer::save_ckpt`].
    pub fn save_ckpt(&self, w: &mut pim_ckpt::Writer) {
        self.buf.borrow().save_ckpt(w);
    }

    /// Checkpoint hook: restores the shared ring in place, so every
    /// existing observer clone keeps feeding the restored buffer.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceBuffer::restore_ckpt`] errors.
    pub fn restore_ckpt(&self, r: &mut pim_ckpt::Reader<'_>) -> Result<(), pim_ckpt::CkptError> {
        self.buf.borrow_mut().restore_ckpt(r)
    }
}

impl Observer for SharedTracer {
    fn state_transition(
        &mut self,
        pe: PeId,
        area: StorageArea,
        from: CohState,
        to: CohState,
        cycle: u64,
    ) {
        self.push(cycle, pe, EventKind::Transition { area, from, to });
    }

    fn bus_grant(
        &mut self,
        pe: PeId,
        op: MemOp,
        area: StorageArea,
        issue: u64,
        wait: u64,
        tx_cycles: u64,
    ) {
        self.push(
            issue,
            pe,
            EventKind::Bus {
                op,
                area,
                wait,
                hold: tx_cycles,
            },
        );
    }

    fn lock_wait(&mut self, pe: PeId, addr: Addr, area: StorageArea, wait: u64, resume_cycle: u64) {
        self.push(
            resume_cycle.saturating_sub(wait),
            pe,
            EventKind::LockWait {
                addr,
                area,
                dur: wait,
            },
        );
    }

    fn lock_acquired(&mut self, pe: PeId, addr: Addr, area: StorageArea, cycle: u64) {
        self.push(cycle, pe, EventKind::LockAcquired { addr, area });
    }

    fn lock_released(
        &mut self,
        pe: PeId,
        addr: Addr,
        area: StorageArea,
        cycle: u64,
        woken: &[PeId],
    ) {
        self.push(
            cycle,
            pe,
            EventKind::LockReleased {
                addr,
                area,
                woken: woken.len() as u32,
            },
        );
    }

    fn reduction(&mut self, pe: PeId, cycle: u64) {
        self.push(cycle, pe, EventKind::Reduction);
    }

    fn suspension(&mut self, pe: PeId, cycle: u64, goal: Addr) {
        self.push(cycle, pe, EventKind::Suspension { goal });
    }

    fn resumption(&mut self, pe: PeId, cycle: u64, goal: Addr) {
        self.push(cycle, pe, EventKind::Resumption { goal });
    }

    fn gc(&mut self, pe: PeId, cycle: u64, words_copied: u64) {
        self.push(
            cycle,
            pe,
            EventKind::Gc {
                words: words_copied,
            },
        );
    }

    fn goal_queue_depth(&mut self, pe: PeId, cycle: u64, depth: u64) {
        self.push(cycle, pe, EventKind::GoalDepth { depth });
    }

    fn fault_injected(&mut self, pe: PeId, kind: &'static str, cycle: u64) {
        self.push(cycle, pe, EventKind::FaultInjected { kind });
    }

    fn fault_recovered(&mut self, pe: PeId, faults: u32, penalty: u64, cycle: u64) {
        self.push(cycle, pe, EventKind::FaultRecovered { faults, penalty });
    }

    fn deadlock(&mut self, pes: &[PeId], cycle: u64) {
        let pe = pes.iter().copied().min().unwrap_or(PeId(0));
        self.push(cycle, pe, EventKind::Deadlock { pes: pes.to_vec() });
    }

    fn watchdog(&mut self, pe: PeId, clock: u64, budget: u64) {
        self.push(clock, pe, EventKind::Watchdog { budget });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, pe: u32) -> Event {
        Event {
            ts,
            pe: PeId(pe),
            kind: EventKind::Reduction,
        }
    }

    #[test]
    fn ring_keeps_smallest_and_counts_drops() {
        let mut buf = TraceBuffer::with_capacity(3);
        for ts in [9, 2, 7, 4, 1] {
            buf.record(ev(ts, 0));
        }
        assert_eq!(buf.emitted(), 5);
        assert_eq!(buf.recorded(), 3);
        assert_eq!(buf.dropped(), 2);
        let kept: Vec<u64> = buf.into_sorted().into_iter().map(|e| e.ts).collect();
        assert_eq!(kept, [1, 2, 4]);
    }

    #[test]
    fn retained_set_is_arrival_order_independent() {
        let mut a = TraceBuffer::with_capacity(4);
        let mut b = TraceBuffer::with_capacity(4);
        let events: Vec<Event> = (0..10).map(|i| ev(i * 3 % 10, (i % 4) as u32)).collect();
        for e in &events {
            a.record(e.clone());
        }
        for e in events.iter().rev() {
            b.record(e.clone());
        }
        assert_eq!(a.into_sorted(), b.into_sorted());
    }

    #[test]
    fn zero_cap_counts_but_stores_nothing() {
        let mut buf = TraceBuffer::with_capacity(0);
        buf.record(ev(5, 1));
        assert_eq!(buf.emitted(), 1);
        assert_eq!(buf.recorded(), 0);
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn shared_clones_feed_one_buffer() {
        let tracer = SharedTracer::with_capacity(16);
        let mut a = tracer.observer();
        let mut b = tracer.observer();
        a.reduction(PeId(0), 10);
        b.gc(PeId(1), 20, 64);
        b.suspension(PeId(1), 30, 0x40);
        assert_eq!(tracer.emitted(), 3);
        let evs = tracer.take_sorted();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].ts, 10);
        assert_eq!(evs[2].kind, EventKind::Suspension { goal: 0x40 });
        assert_eq!(tracer.recorded(), 0);
    }
}
