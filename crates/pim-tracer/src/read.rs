//! Reading saved traces back: a dependency-free JSON parser producing
//! [`pim_obs::Json`] values, plus the typed [`Trace`] model `pimtrace`
//! analyzes.
//!
//! The parser accepts standard JSON (the grammar of RFC 8259); it
//! exists because `pim_obs::Json` is deliberately writer-only. Numbers
//! become `U64` when integral and non-negative, `I64` when integral and
//! negative, `F64` otherwise — the same shapes the writer emits.

use pim_obs::Json;

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs never occur in our own
                            // output; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    s.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // One multi-byte UTF-8 scalar: decode from at most
                    // four bytes, never the whole remaining input.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(chunk) {
                        Ok(t) => t,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .map_err(|_| self.err("invalid utf-8 in string"))?
                        }
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    };
                    let ch = valid
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("truncated string"))?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("bad number"))
    }
}

/// Field access helpers for parsed values.
pub trait JsonExt {
    /// Looks a key up in an object; `None` for non-objects.
    fn get(&self, key: &str) -> Option<&Json>;
    /// The value as u64 if it is a non-negative integer.
    fn as_u64(&self) -> Option<u64>;
    /// The value as a string slice.
    fn as_str(&self) -> Option<&str>;
}

impl JsonExt for Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(u) => Some(*u),
            Json::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed `traceEvents` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Phase: `M`, `B`, `E`, `X`, `i`, or `C`.
    pub ph: String,
    /// Timestamp in cycles.
    pub ts: u64,
    /// Span length for `X` events, 0 otherwise.
    pub dur: u64,
    /// Track: 0 = bus, *i* + 1 = PE *i*.
    pub tid: u64,
    /// Event name.
    pub name: String,
    /// The `args` object (or `Null` when absent).
    pub args: Json,
    /// Canonical compact re-rendering of the whole entry, for diffing.
    pub raw: String,
}

/// A parsed trace file.
#[derive(Debug, Clone)]
pub struct Trace {
    /// All events in file order.
    pub events: Vec<ChromeEvent>,
    /// Makespan in cycles from `otherData`.
    pub makespan: u64,
    /// PE count from `otherData`.
    pub pes: u64,
    /// Ring counters from `otherData`.
    pub emitted: u64,
    /// Events retained in the file.
    pub recorded: u64,
    /// Events discarded at the ring cap.
    pub dropped: u64,
}

impl Trace {
    /// Parses the text of a trace file.
    pub fn parse(src: &str) -> Result<Trace, String> {
        let doc = parse_json(src)?;
        let events_json = match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            _ => return Err("missing traceEvents array".into()),
        };
        let mut events = Vec::with_capacity(events_json.len());
        for (i, e) in events_json.iter().enumerate() {
            let ph = e
                .get("ph")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing ph"))?
                .to_string();
            let ts = e
                .get("ts")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {i}: missing ts"))?;
            let tid = e
                .get("tid")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {i}: missing tid"))?;
            e.get("pid")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {i}: missing pid"))?;
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let dur = e.get("dur").and_then(Json::as_u64).unwrap_or(0);
            let args = e.get("args").cloned().unwrap_or(Json::Null);
            events.push(ChromeEvent {
                ph,
                ts,
                dur,
                tid,
                name,
                args,
                raw: e.to_string_compact(),
            });
        }
        let other = doc.get("otherData").cloned().unwrap_or(Json::Null);
        let field = |k: &str| other.get(k).and_then(Json::as_u64).unwrap_or(0);
        Ok(Trace {
            events,
            makespan: field("makespan"),
            pes: field("pes"),
            emitted: field("emitted"),
            recorded: field("recorded"),
            dropped: field("dropped"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let j = parse_json(r#"{"a":[1,-2,3.5,"x\n",true,null],"b":{}}"#).expect("parse");
        assert_eq!(
            j.get("a").and_then(|a| match a {
                Json::Arr(v) => v.first().cloned(),
                _ => None,
            }),
            Some(Json::U64(1))
        );
        let arr = match j.get("a") {
            Some(Json::Arr(v)) => v,
            _ => panic!("not arr"),
        };
        assert_eq!(arr[1], Json::I64(-2));
        assert_eq!(arr[2], Json::F64(3.5));
        assert_eq!(arr[3], Json::Str("x\n".into()));
        assert_eq!(arr[4], Json::Bool(true));
        assert_eq!(arr[5], Json::Null);
        assert_eq!(j.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"open").is_err());
    }

    #[test]
    fn round_trips_writer_output() {
        let original = Json::obj([
            ("n", Json::U64(42)),
            ("s", Json::from("a\"b\\c\nd")),
            ("f", Json::F64(1.5)),
            ("arr", Json::arr([Json::Null, Json::Bool(false)])),
        ]);
        for text in [original.to_string_compact(), original.to_string_pretty()] {
            assert_eq!(parse_json(&text).expect("reparse"), original);
        }
    }

    #[test]
    fn trace_parse_extracts_envelope() {
        let src = "{\n\"traceEvents\": [\n{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":7,\"name\":\"reduce\"}\n],\n\"displayTimeUnit\": \"ns\",\n\"otherData\": {\"schema\":\"pim-trace/v1\",\"makespan\":99,\"pes\":2,\"emitted\":1,\"recorded\":1,\"dropped\":0}\n}\n";
        let t = Trace::parse(src).expect("trace");
        assert_eq!(t.makespan, 99);
        assert_eq!(t.pes, 2);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].ph, "i");
        assert_eq!(t.events[0].ts, 7);
    }
}
