//! Offline trace analyses behind the `pimtrace` binary: critical-path
//! extraction, lock-contention hotspots, bus-occupancy timeline, and
//! event-by-event diffing.

use crate::read::{ChromeEvent, JsonExt, Trace};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One critical-path segment `[start, end)` attributed to a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Segment start cycle.
    pub start: u64,
    /// Segment end cycle (exclusive).
    pub end: u64,
    /// Track the cycles are charged to (0 = bus, *i* + 1 = PE *i*).
    pub tid: u64,
    /// What the track was doing: `compute`, `bus …`, or `lock wait …`.
    pub label: String,
}

impl Segment {
    /// Segment length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

fn is_lock_wait(e: &ChromeEvent) -> bool {
    e.name.starts_with("lock wait")
}

/// Walks the makespan backward into a gapless chain of segments.
///
/// Starting from the finish line at `makespan` on the PE whose recorded
/// activity ends last, each step charges the cycles back to whatever
/// that PE was doing: a recorded span (`bus …` / `lock wait …`) ending
/// at the cursor, or `compute` for the gap back to the previous span.
/// A lock-wait span additionally *jumps* the walk to the PE that
/// released the lock (found via the `lock release` instant at the same
/// address and cycle) — the classic critical-path chase through
/// contention. The segments partition `[0, makespan)` exactly, so
/// their cycle sum always equals the makespan.
pub fn critical_path(trace: &Trace) -> Vec<Segment> {
    if trace.makespan == 0 {
        return Vec::new();
    }
    // Per-PE X spans sorted by end cycle; zero-length spans are useless
    // to the walk and would not terminate it.
    let mut spans: HashMap<u64, Vec<&ChromeEvent>> = HashMap::new();
    for e in &trace.events {
        if e.ph == "X" && e.dur > 0 && e.tid > 0 {
            spans.entry(e.tid).or_default().push(e);
        }
    }
    for list in spans.values_mut() {
        list.sort_by_key(|e| (e.ts + e.dur, e.ts, &e.name));
    }
    // Lock releases indexed by (addr, cycle) -> releasing track.
    let mut releases: HashMap<(u64, u64), u64> = HashMap::new();
    for e in &trace.events {
        if e.ph == "i" && e.name == "lock release" {
            if let Some(addr) = e.args.get("addr").and_then(JsonExt::as_u64) {
                releases.insert((addr, e.ts), e.tid);
            }
        }
    }

    // Start on the PE whose last span ends latest; ties and span-free
    // traces resolve to the lowest PE track.
    let mut tid = spans
        .iter()
        .map(|(tid, list)| {
            let last = list.last().map(|e| e.ts + e.dur).unwrap_or(0);
            (last, std::cmp::Reverse(*tid))
        })
        .max()
        .map(|(_, std::cmp::Reverse(t))| t)
        .unwrap_or(1);

    let mut segments = Vec::new();
    let mut t = trace.makespan;
    while t > 0 {
        let latest = spans.get(&tid).and_then(|list| {
            // Latest span ending at or before the cursor (lists are
            // sorted by end cycle).
            let i = list.partition_point(|e| e.ts + e.dur <= t);
            (i > 0).then(|| list[i - 1])
        });
        match latest {
            None => {
                segments.push(Segment {
                    start: 0,
                    end: t,
                    tid,
                    label: "compute".into(),
                });
                t = 0;
            }
            Some(s) if s.ts + s.dur < t => {
                segments.push(Segment {
                    start: s.ts + s.dur,
                    end: t,
                    tid,
                    label: "compute".into(),
                });
                t = s.ts + s.dur;
            }
            Some(s) => {
                // Span ends exactly at the cursor: it is on the path.
                segments.push(Segment {
                    start: s.ts,
                    end: t,
                    tid,
                    label: s.name.clone(),
                });
                if is_lock_wait(s) {
                    if let Some(addr) = s.args.get("addr").and_then(JsonExt::as_u64) {
                        if let Some(&holder) = releases.get(&(addr, t)) {
                            tid = holder;
                        }
                    }
                }
                t = s.ts;
            }
        }
    }
    segments.reverse();
    // Merge adjacent same-work segments for readability; the partition
    // property is preserved.
    let mut merged: Vec<Segment> = Vec::with_capacity(segments.len());
    for seg in segments {
        match merged.last_mut() {
            Some(prev)
                if prev.tid == seg.tid && prev.label == seg.label && prev.end == seg.start =>
            {
                prev.end = seg.end;
            }
            _ => merged.push(seg),
        }
    }
    merged
}

/// Renders the critical-path report: the top-N longest segments plus a
/// by-label cycle breakdown whose total equals the makespan.
pub fn critical_path_report(trace: &Trace, top: usize) -> String {
    let segments = critical_path(trace);
    let total: u64 = segments.iter().map(Segment::cycles).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical path: {} segments, {} cycles (makespan {})",
        segments.len(),
        total,
        trace.makespan
    );

    let mut by_label: HashMap<&str, u64> = HashMap::new();
    for s in &segments {
        *by_label.entry(s.label.as_str()).or_default() += s.cycles();
    }
    let mut breakdown: Vec<(&str, u64)> = by_label.into_iter().collect();
    breakdown.sort_by_key(|&(label, cycles)| (std::cmp::Reverse(cycles), label));
    let _ = writeln!(out, "\nby activity:");
    for (label, cycles) in &breakdown {
        let pct = 100.0 * *cycles as f64 / total.max(1) as f64;
        let _ = writeln!(out, "  {cycles:>12}  {pct:5.1}%  {label}");
    }

    let mut ranked: Vec<&Segment> = segments.iter().collect();
    ranked.sort_by_key(|s| (std::cmp::Reverse(s.cycles()), s.start));
    let _ = writeln!(out, "\ntop {} segments:", top.min(ranked.len()));
    for s in ranked.iter().take(top) {
        let track = if s.tid == 0 {
            "bus".to_string()
        } else {
            format!("PE {}", s.tid - 1)
        };
        let _ = writeln!(
            out,
            "  [{:>10}, {:>10})  {:>10} cy  {:<6} {}",
            s.start,
            s.end,
            s.cycles(),
            track,
            s.label
        );
    }
    out
}

/// Renders lock-contention hotspots: lock-wait spans aggregated by
/// address, sorted by total stall cycles.
pub fn lock_hotspots_report(trace: &Trace, top: usize) -> String {
    struct Spot {
        area: String,
        count: u64,
        total: u64,
        max: u64,
    }
    let mut spots: HashMap<u64, Spot> = HashMap::new();
    for e in &trace.events {
        if e.ph == "X" && is_lock_wait(e) {
            let addr = e.args.get("addr").and_then(JsonExt::as_u64).unwrap_or(0);
            let area = e
                .args
                .get("area")
                .and_then(JsonExt::as_str)
                .unwrap_or("?")
                .to_string();
            let spot = spots.entry(addr).or_insert(Spot {
                area,
                count: 0,
                total: 0,
                max: 0,
            });
            spot.count += 1;
            spot.total += e.dur;
            spot.max = spot.max.max(e.dur);
        }
    }
    let mut ranked: Vec<(u64, Spot)> = spots.into_iter().collect();
    ranked.sort_by_key(|&(addr, ref s)| (std::cmp::Reverse(s.total), addr));

    let mut out = String::new();
    let grand: u64 = ranked.iter().map(|(_, s)| s.total).sum();
    let waits: u64 = ranked.iter().map(|(_, s)| s.count).sum();
    let _ = writeln!(
        out,
        "lock contention: {} addresses, {} waits, {} stall cycles",
        ranked.len(),
        waits,
        grand
    );
    let _ = writeln!(
        out,
        "\n  {:>12}  {:<5} {:>7} {:>12} {:>8}",
        "addr", "area", "waits", "cycles", "max"
    );
    for (addr, s) in ranked.iter().take(top) {
        let _ = writeln!(
            out,
            "  {:#12x}  {:<5} {:>7} {:>12} {:>8}",
            addr, s.area, s.count, s.total, s.max
        );
    }
    out
}

/// Renders the bus-occupancy timeline: hold cycles per fixed window
/// across the makespan, from the balanced `B`/`E` pairs on the bus
/// track, plus overall utilization.
pub fn bus_occupancy_report(trace: &Trace, windows: usize) -> String {
    let windows = windows.max(1);
    let span = trace.makespan.max(1);
    let win = span.div_ceil(windows as u64).max(1);
    let mut held = vec![0u64; windows];
    let mut total_held = 0u64;
    let mut open: Option<u64> = None;
    for e in trace.events.iter().filter(|e| e.tid == 0) {
        match e.ph.as_str() {
            "B" => open = Some(e.ts),
            "E" => {
                if let Some(start) = open.take() {
                    total_held += e.ts - start;
                    // Spread the hold over the windows it crosses.
                    let mut t = start;
                    while t < e.ts {
                        let idx = ((t / win) as usize).min(windows - 1);
                        let wend = ((t / win) + 1) * win;
                        let step = wend.min(e.ts) - t;
                        held[idx] += step;
                        t += step;
                    }
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    let util = 100.0 * total_held as f64 / span as f64;
    let _ = writeln!(
        out,
        "bus occupancy: {total_held} of {span} cycles held ({util:.1}%)"
    );
    let _ = writeln!(out, "\n  window ({win} cycles each):");
    for (i, h) in held.iter().enumerate() {
        let lo = i as u64 * win;
        if lo >= span {
            break;
        }
        let hi = (lo + win).min(span);
        let width = hi - lo;
        let pct = 100.0 * *h as f64 / width.max(1) as f64;
        let bars = (pct / 2.5).round() as usize;
        let _ = writeln!(
            out,
            "  [{lo:>10}, {hi:>10})  {pct:5.1}%  {}",
            "#".repeat(bars.min(40))
        );
    }
    out
}

/// The result of comparing two traces event-by-event.
#[derive(Debug)]
pub struct DiffReport {
    /// Number of differing positions (including length mismatch tail).
    pub differences: usize,
    /// Human-readable report text.
    pub text: String,
}

/// Compares two traces event-by-event (canonical renderings), plus the
/// envelope counters. `max_shown` bounds the listed differences.
pub fn diff(a: &Trace, b: &Trace, max_shown: usize) -> DiffReport {
    let mut text = String::new();
    let mut differences = 0usize;
    for (field, va, vb) in [
        ("makespan", a.makespan, b.makespan),
        ("pes", a.pes, b.pes),
        ("emitted", a.emitted, b.emitted),
        ("recorded", a.recorded, b.recorded),
        ("dropped", a.dropped, b.dropped),
    ] {
        if va != vb {
            differences += 1;
            let _ = writeln!(text, "otherData.{field}: {va} != {vb}");
        }
    }
    let n = a.events.len().max(b.events.len());
    for i in 0..n {
        let ea = a.events.get(i).map(|e| e.raw.as_str());
        let eb = b.events.get(i).map(|e| e.raw.as_str());
        if ea != eb {
            differences += 1;
            if differences <= max_shown {
                let _ = writeln!(text, "event {i}:");
                let _ = writeln!(text, "  A: {}", ea.unwrap_or("<absent>"));
                let _ = writeln!(text, "  B: {}", eb.unwrap_or("<absent>"));
            }
        }
    }
    if differences == 0 {
        let _ = writeln!(
            text,
            "identical: {} events, makespan {}",
            a.events.len(),
            a.makespan
        );
    } else {
        let _ = writeln!(text, "{differences} difference(s)");
    }
    DiffReport { differences, text }
}

/// True when `text` looks like a `pim-repro/v1` or `pim-sweep/v1`
/// report document rather than a Chrome trace: the report envelopes
/// carry their schema identifiers.
pub fn is_report(text: &str) -> bool {
    ["pim-repro/v1", "pim-sweep/v1"].iter().any(|schema| {
        text.contains(&format!("\"schema\": \"{schema}\""))
            || text.contains(&format!("\"schema\":\"{schema}\""))
    })
}

/// Drops the `"checkpoint"` and `"provenance"` blocks — the run-local
/// provenance sections of `pim-repro/v1` and `pim-sweep/v1` reports —
/// from a pretty-printed report, returning the remaining lines.
/// Brace-counting keeps the strip correct even if a block grows nested
/// members later.
fn strip_checkpoint_block(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut lines = text.lines();
    while let Some(line) = lines.next() {
        let head = line.trim_start();
        if head.starts_with("\"checkpoint\":") || head.starts_with("\"provenance\":") {
            let mut depth = line.matches('{').count() as i64 - line.matches('}').count() as i64;
            while depth > 0 {
                let Some(inner) = lines.next() else { break };
                depth += inner.matches('{').count() as i64 - inner.matches('}').count() as i64;
            }
            continue;
        }
        out.push(line);
    }
    out
}

/// Compares two `pim-repro/v1` report documents line-by-line, ignoring
/// the `checkpoint` provenance block — the one section allowed to
/// differ between a resumed run and its uninterrupted twin. `max_shown`
/// bounds the listed differences.
pub fn report_diff(a: &str, b: &str, max_shown: usize) -> DiffReport {
    let (la, lb) = (strip_checkpoint_block(a), strip_checkpoint_block(b));
    let mut text = String::new();
    let mut differences = 0usize;
    let n = la.len().max(lb.len());
    for i in 0..n {
        let va = la.get(i).copied();
        let vb = lb.get(i).copied();
        if va != vb {
            differences += 1;
            if differences <= max_shown {
                let _ = writeln!(text, "line {}:", i + 1);
                let _ = writeln!(text, "  A: {}", va.unwrap_or("<absent>").trim_end());
                let _ = writeln!(text, "  B: {}", vb.unwrap_or("<absent>").trim_end());
            }
        }
    }
    if differences == 0 {
        let _ = writeln!(
            text,
            "identical modulo checkpoint block: {} lines",
            la.len()
        );
    } else {
        let _ = writeln!(text, "{differences} difference(s)");
    }
    DiffReport { differences, text }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{export_chrome, TraceMeta};
    use crate::event::{Event, EventKind};
    use pim_trace::{MemOp, PeId, StorageArea};

    fn bus(ts: u64, pe: u32, wait: u64, hold: u64) -> Event {
        Event {
            ts,
            pe: PeId(pe),
            kind: EventKind::Bus {
                op: MemOp::Read,
                area: StorageArea::Heap,
                wait,
                hold,
            },
        }
    }

    fn trace_of(events: Vec<Event>, makespan: u64, pes: usize) -> Trace {
        let n = events.len() as u64;
        let text = export_chrome(
            &events,
            &TraceMeta {
                makespan,
                pes,
                emitted: n,
                recorded: n,
                dropped: 0,
            },
        );
        Trace::parse(&text).expect("reparse")
    }

    #[test]
    fn critical_path_partitions_the_makespan() {
        // PE0: bus [10,20); PE1: lock wait [5,30) on 0x40 released by
        // PE0 at 30, bus [40,50).
        let events = vec![
            bus(10, 0, 3, 7),
            Event {
                ts: 5,
                pe: PeId(1),
                kind: EventKind::LockWait {
                    addr: 0x40,
                    area: StorageArea::Goal,
                    dur: 25,
                },
            },
            Event {
                ts: 30,
                pe: PeId(0),
                kind: EventKind::LockReleased {
                    addr: 0x40,
                    area: StorageArea::Goal,
                    woken: 1,
                },
            },
            bus(40, 1, 0, 10),
        ];
        let trace = trace_of(events, 64, 2);
        let segs = critical_path(&trace);
        assert_eq!(segs.first().map(|s| s.start), Some(0));
        assert_eq!(segs.last().map(|s| s.end), Some(64));
        let total: u64 = segs.iter().map(Segment::cycles).sum();
        assert_eq!(total, 64);
        for pair in segs.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "gapless chain");
        }
        // The walk crosses the lock wait and lands on PE0's track.
        assert!(segs.iter().any(|s| s.label.starts_with("lock wait")));
        assert!(segs.iter().any(|s| s.tid == 1));
    }

    #[test]
    fn critical_path_of_empty_trace_is_one_compute_segment() {
        let trace = trace_of(vec![], 100, 1);
        let segs = critical_path(&trace);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].start, segs[0].end), (0, 100));
        assert_eq!(segs[0].label, "compute");
    }

    #[test]
    fn lock_hotspots_rank_by_total_stall() {
        let mk = |addr: u64, dur: u64| Event {
            ts: 0,
            pe: PeId(0),
            kind: EventKind::LockWait {
                addr,
                area: StorageArea::Goal,
                dur,
            },
        };
        let trace = trace_of(vec![mk(0x10, 5), mk(0x20, 50), mk(0x10, 6)], 100, 1);
        let report = lock_hotspots_report(&trace, 10);
        let pos20 = report.find("0x20").expect("0x20 listed");
        let pos10 = report.find("0x10").expect("0x10 listed");
        assert!(pos20 < pos10, "larger total first");
        assert!(report.contains("3 waits"));
    }

    #[test]
    fn bus_occupancy_accounts_every_hold_cycle() {
        let trace = trace_of(vec![bus(0, 0, 0, 25), bus(50, 0, 0, 25)], 100, 1);
        let report = bus_occupancy_report(&trace, 4);
        assert!(report.contains("50 of 100 cycles held (50.0%)"), "{report}");
    }

    #[test]
    fn diff_reports_identity_and_differences() {
        let a = trace_of(vec![bus(0, 0, 0, 5)], 10, 1);
        let b = trace_of(vec![bus(0, 0, 0, 6)], 10, 1);
        let same = diff(&a, &a, 5);
        assert_eq!(same.differences, 0);
        assert!(same.text.contains("identical"));
        let diffm = diff(&a, &b, 5);
        assert!(diffm.differences > 0);
        assert!(diffm.text.contains("event "));
    }

    #[test]
    fn report_diff_ignores_the_checkpoint_block() {
        let full = "{\n  \"schema\": \"pim-repro/v1\",\n  \"checkpoint\": {\n    \
                    \"resumed_from_cycle\": null,\n    \"snapshots\": 0\n  },\n  \
                    \"makespan_cycles\": 100\n}\n";
        let resumed = "{\n  \"schema\": \"pim-repro/v1\",\n  \"checkpoint\": {\n    \
                       \"resumed_from_cycle\": 42,\n    \"snapshots\": 3\n  },\n  \
                       \"makespan_cycles\": 100\n}\n";
        assert!(is_report(full) && is_report(resumed));
        let same = report_diff(full, resumed, 5);
        assert_eq!(same.differences, 0, "{}", same.text);
        assert!(same.text.contains("modulo checkpoint block"));

        let drifted = resumed.replace("\"makespan_cycles\": 100", "\"makespan_cycles\": 101");
        let diffm = report_diff(full, &drifted, 5);
        assert_eq!(diffm.differences, 1);
        assert!(diffm.text.contains("makespan_cycles"));
    }

    #[test]
    fn chrome_traces_are_not_mistaken_for_reports() {
        let a = trace_of(vec![bus(0, 0, 0, 5)], 10, 1);
        assert!(!is_report(&export_chrome(
            &a.events.iter().map(|_| bus(0, 0, 0, 5)).collect::<Vec<_>>(),
            &TraceMeta {
                makespan: 10,
                pes: 1,
                emitted: 1,
                recorded: 1,
                dropped: 0,
            },
        )));
    }
}
