//! Property tests of the span model: guards always balance, and
//! per-phase self times can never exceed the elapsed wall time.

use pim_perf::Profiler;
use proptest::prelude::*;

const PHASES: [&str; 4] = ["engine run", "gc", "coordinator replay", "report write"];

/// Interprets a byte string as a nesting program: low bits pick
/// open-a-span (of one of four phases) vs close-the-innermost-span.
/// Whatever the sequence, the RAII guards force balanced enter/exit.
fn interpret(profiler: &Profiler, ops: &[u8]) {
    let mut guards: Vec<pim_perf::Span<'_>> = Vec::new();
    for &op in ops {
        if op % 3 != 0 || guards.is_empty() {
            guards.push(profiler.span(PHASES[(op as usize / 4) % PHASES.len()]));
            // A little real work so spans have nonzero width.
            std::hint::black_box((0..32u64).sum::<u64>());
        } else {
            guards.pop();
        }
    }
    // Unwind the remaining guards innermost-first (a plain Vec drop
    // would run front-to-back, i.e. outermost-first).
    while guards.pop().is_some() {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spans_always_balance_and_self_times_fit_in_wall(
        ops in proptest::collection::vec(any::<u8>(), 0..96)
    ) {
        let profiler = Profiler::new();
        profiler.enable();
        let started = std::time::Instant::now();
        interpret(&profiler, &ops);
        let wall = started.elapsed().as_nanos() as u64;

        // Balance: every guard has dropped, nothing is left open.
        prop_assert_eq!(profiler.open_spans(), 0);

        let report = profiler.take_report();
        // Self times partition wall time on a single thread: each phase's
        // self time excludes nested children, so the sum over phases can
        // never exceed the elapsed wall clock (tolerance for the clock
        // reads around `interpret`).
        let self_sum: u64 = report.phases.iter().map(|p| p.self_ns).sum();
        prop_assert!(
            self_sum <= wall,
            "self-time sum {} exceeds wall {}", self_sum, wall
        );
        for phase in &report.phases {
            prop_assert!(
                phase.self_ns <= phase.total_ns,
                "{}: self {} > total {}", phase.name, phase.self_ns, phase.total_ns
            );
            prop_assert!(phase.count > 0);
        }
    }

    #[test]
    fn disabled_profiler_stays_empty(
        ops in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let profiler = Profiler::new();
        interpret(&profiler, &ops);
        prop_assert_eq!(profiler.open_spans(), 0);
        prop_assert!(profiler.snapshot().phases.is_empty());
    }
}
