//! Host-performance observability for the simulator itself.
//!
//! Every other crate in this workspace measures the *simulated* machine
//! (bus cycles, miss ratios, makespans). This crate measures the
//! *simulator*: where its wall time goes, how much it allocates, and how
//! fast it chews through work. It is the substrate the perf-trajectory
//! files (`BENCH_*.json`, written by `pimbench`) and the `--perf` flag
//! of every binary report against.
//!
//! Three pieces:
//!
//! * **Scoped phase spans** — [`span`] returns an RAII guard that, while
//!   the global profiler is enabled, attributes the enclosed wall time
//!   to a named phase (`trace parse`, `engine run`, `epoch barrier`,
//!   `coordinator replay`, `gc`, `report write`, …). Spans nest; the
//!   aggregate tracks both *total* time (guard lifetime) and *self*
//!   time (total minus enclosed child spans), so a breakdown never
//!   double-counts a nested phase. Balance is structural: the guard
//!   closes the span on drop, so enter/exit pairs cannot be mismatched.
//! * **Allocation counting** — with the `count-alloc` feature, binaries
//!   can install [`CountingAlloc`] as their global allocator; spans then
//!   also attribute allocation counts and bytes per phase. Without the
//!   feature no allocator hook exists at all and the crate stays
//!   `forbid(unsafe_code)`.
//! * **Throughput reporting** — [`throughput_line`] renders the
//!   one-line `events/s` / `sim-cycles/s` summary every binary prints on
//!   stderr, and [`provenance`] captures the host/commit identity that
//!   stamps `host_perf` report blocks and `BENCH_*.json` files.
//!
//! Cost when disabled (the default): creating a span is one relaxed
//! atomic load — no clock is read, no lock is taken, nothing allocates.
//! The determinism suites run with the profiler disabled and see
//! byte-identical outputs; enabling `--perf` only ever *adds* the
//! `host_perf` block to a report, never changes any simulated number.

#![cfg_attr(not(feature = "count-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "count-alloc", deny(unsafe_code))]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

use pim_obs::Json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

#[cfg(feature = "count-alloc")]
mod alloc;
#[cfg(feature = "count-alloc")]
pub use alloc::CountingAlloc;

/// The canonical phase names used across the workspace, so breakdowns
/// from different binaries line up.
pub mod phase {
    /// Reading or generating the input trace / compiling the program.
    pub const TRACE_PARSE: &str = "trace parse";
    /// The simulation engine's main loop (either engine).
    pub const ENGINE_RUN: &str = "engine run";
    /// Parallel engine: fan-out/drain of a speculation epoch — the time
    /// the coordinator spends waiting at the worker barrier.
    pub const EPOCH_BARRIER: &str = "epoch barrier";
    /// Parallel engine: replaying one global operation in committed
    /// `(cycle, PE)` order on the coordinator.
    pub const COORD_REPLAY: &str = "coordinator replay";
    /// KL1 machine stop-and-copy garbage collection.
    pub const GC: &str = "gc";
    /// Serializing and writing reports, profiles, and trace files.
    pub const REPORT_WRITE: &str = "report write";
    /// Writing or restoring a `pim-ckpt/v1` snapshot.
    pub const CHECKPOINT: &str = "checkpoint";
    /// One experiment cell in the `repro` / `pimbench` harnesses.
    pub const EXPERIMENT: &str = "experiment";
}

/// Aggregated statistics for one phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (one of [`phase`], or caller-defined).
    pub name: &'static str,
    /// Closed span count.
    pub count: u64,
    /// Summed guard lifetimes. Nested spans of the *same* phase each
    /// contribute their full lifetime, so recursive nesting over-counts
    /// total (self time stays exact); the workspace's phases don't nest
    /// recursively.
    pub total_ns: u64,
    /// Summed lifetimes minus time spent in enclosed child spans.
    pub self_ns: u64,
    /// Allocations attributed to this phase's self time (0 unless the
    /// `count-alloc` allocator is installed).
    pub allocs: u64,
    /// Bytes allocated, attributed like `allocs`.
    pub alloc_bytes: u64,
}

/// A snapshot of the profiler: wall time since [`Profiler::enable`] and
/// the per-phase breakdown, sorted by name for stable rendering.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Wall nanoseconds since the profiler was enabled.
    pub wall_ns: u64,
    /// Whether a counting allocator was live (alloc columns meaningful).
    pub alloc_counting: bool,
    /// Per-phase aggregates, sorted by phase name.
    pub phases: Vec<PhaseStat>,
}

impl Report {
    /// Wire form for the `host_perf` report block and `BENCH_*.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("wall_ns", Json::from(self.wall_ns)),
            ("alloc_counting", Json::from(self.alloc_counting)),
            (
                "phases",
                Json::arr(self.phases.iter().map(|p| {
                    let mut o = Json::obj([
                        ("name", Json::from(p.name)),
                        ("count", Json::from(p.count)),
                        ("total_ns", Json::from(p.total_ns)),
                        ("self_ns", Json::from(p.self_ns)),
                    ]);
                    if self.alloc_counting {
                        o.push("allocs", Json::from(p.allocs));
                        o.push("alloc_bytes", Json::from(p.alloc_bytes));
                    }
                    o
                })),
            ),
        ])
    }

    /// Multi-line human breakdown for stderr (each line `[perf]`-tagged
    /// so it interleaves safely with other diagnostics).
    pub fn render(&self) -> String {
        let mut out = format!("[perf] wall {}\n", fmt_ns(self.wall_ns as f64));
        if self.phases.is_empty() {
            out.push_str("[perf] no phases recorded\n");
            return out;
        }
        let alloc_hdr = if self.alloc_counting {
            "      allocs   alloc bytes"
        } else {
            ""
        };
        out.push_str(&format!(
            "[perf] {:<20} {:>7} {:>11} {:>11}{alloc_hdr}\n",
            "phase", "count", "total", "self"
        ));
        for p in &self.phases {
            let alloc_cols = if self.alloc_counting {
                format!(" {:>11} {:>13}", p.allocs, p.alloc_bytes)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "[perf] {:<20} {:>7} {:>11} {:>11}{alloc_cols}\n",
                p.name,
                p.count,
                fmt_ns(p.total_ns as f64),
                fmt_ns(p.self_ns as f64),
            ));
        }
        out
    }
}

/// One open span on a thread's stack.
struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
    start_allocs: u64,
    start_bytes: u64,
    child_allocs: u64,
    child_bytes: u64,
}

struct State {
    started: Option<Instant>,
    stacks: Vec<(ThreadId, Vec<Frame>)>,
    phases: Vec<(&'static str, PhaseStat)>,
}

impl State {
    const fn new() -> State {
        State {
            started: None,
            stacks: Vec::new(),
            phases: Vec::new(),
        }
    }

    fn stat_mut(&mut self, name: &'static str) -> &mut PhaseStat {
        let idx = match self.phases.iter().position(|(n, _)| *n == name) {
            Some(i) => i,
            None => {
                self.phases.push((
                    name,
                    PhaseStat {
                        name,
                        count: 0,
                        total_ns: 0,
                        self_ns: 0,
                        allocs: 0,
                        alloc_bytes: 0,
                    },
                ));
                self.phases.len() - 1
            }
        };
        &mut self.phases[idx].1
    }
}

/// A phase profiler. Binaries use the process-global instance through
/// the free functions ([`enable`], [`span`], [`take_report`]); tests
/// construct their own instances so concurrent tests never share state.
pub struct Profiler {
    enabled: AtomicBool,
    inner: Mutex<State>,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

impl Profiler {
    /// A disabled profiler with no recorded phases.
    pub const fn new() -> Profiler {
        Profiler {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(State::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Starts recording: the wall clock begins now and subsequent
    /// [`Profiler::span`] calls are live.
    pub fn enable(&self) {
        self.lock().started = Some(Instant::now());
        self.enabled.store(true, Ordering::Release);
    }

    /// Whether spans are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opens a span attributing the guard's lifetime to `name`. When the
    /// profiler is disabled this is a single atomic load and the guard
    /// is inert.
    #[must_use = "the span closes when the guard drops"]
    pub fn span<'p>(&'p self, name: &'static str) -> Span<'p> {
        if !self.is_enabled() {
            return Span { prof: None, name };
        }
        let (allocs, bytes) = thread_alloc_counters();
        let mut state = self.lock();
        let tid = std::thread::current().id();
        let stack = match state.stacks.iter_mut().position(|(t, _)| *t == tid) {
            Some(i) => &mut state.stacks[i].1,
            None => {
                state.stacks.push((tid, Vec::new()));
                let last = state.stacks.len() - 1;
                &mut state.stacks[last].1
            }
        };
        stack.push(Frame {
            name,
            start: Instant::now(),
            child_ns: 0,
            start_allocs: allocs,
            start_bytes: bytes,
            child_allocs: 0,
            child_bytes: 0,
        });
        Span {
            prof: Some(self),
            name,
        }
    }

    fn close_span(&self, name: &'static str) {
        let (allocs_now, bytes_now) = thread_alloc_counters();
        let mut state = self.lock();
        let tid = std::thread::current().id();
        let Some(stack_idx) = state.stacks.iter().position(|(t, _)| *t == tid) else {
            return; // report taken while the span was open
        };
        // Guards drop in LIFO order per thread, so the top frame is ours
        // unless the state was reset mid-span.
        let Some(frame) = state.stacks[stack_idx].1.pop() else {
            return;
        };
        if frame.name != name {
            // State was reset and re-populated mid-span; drop the frame
            // rather than attribute nonsense.
            state.stacks[stack_idx].1.push(frame);
            return;
        }
        let elapsed = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let self_ns = elapsed.saturating_sub(frame.child_ns);
        let allocs = allocs_now.saturating_sub(frame.start_allocs);
        let bytes = bytes_now.saturating_sub(frame.start_bytes);
        let self_allocs = allocs.saturating_sub(frame.child_allocs);
        let self_bytes = bytes.saturating_sub(frame.child_bytes);
        if let Some(parent) = state.stacks[stack_idx].1.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(elapsed);
            parent.child_allocs = parent.child_allocs.saturating_add(allocs);
            parent.child_bytes = parent.child_bytes.saturating_add(bytes);
        }
        let stat = state.stat_mut(name);
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(elapsed);
        stat.self_ns = stat.self_ns.saturating_add(self_ns);
        stat.allocs = stat.allocs.saturating_add(self_allocs);
        stat.alloc_bytes = stat.alloc_bytes.saturating_add(self_bytes);
    }

    /// How many spans are currently open across all threads — 0 whenever
    /// every guard has dropped (the balance invariant).
    pub fn open_spans(&self) -> usize {
        self.lock().stacks.iter().map(|(_, s)| s.len()).sum()
    }

    /// A snapshot of the closed-span aggregates without resetting them.
    /// Open spans are not counted (they close on guard drop).
    pub fn snapshot(&self) -> Report {
        let state = self.lock();
        let mut phases: Vec<PhaseStat> = state.phases.iter().map(|(_, s)| s.clone()).collect();
        phases.sort_by_key(|p| p.name);
        Report {
            wall_ns: state.started.map_or(0, |s| {
                u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }),
            alloc_counting: alloc_counting(),
            phases,
        }
    }

    /// [`Profiler::snapshot`], then clears the aggregates and restarts
    /// the wall clock. Open spans are discarded from the aggregate (their
    /// guards become inert).
    pub fn take_report(&self) -> Report {
        let report = self.snapshot();
        let mut state = self.lock();
        state.phases.clear();
        state.stacks.clear();
        if state.started.is_some() {
            state.started = Some(Instant::now());
        }
        report
    }
}

/// RAII guard for one phase span; closes the span on drop.
#[must_use = "the span closes when the guard drops"]
pub struct Span<'p> {
    prof: Option<&'p Profiler>,
    name: &'static str,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(prof) = self.prof {
            prof.close_span(self.name);
        }
    }
}

/// The process-global profiler behind [`enable`] / [`span`].
pub static GLOBAL: Profiler = Profiler::new();

/// Enables the global profiler (the `--perf` switch).
pub fn enable() {
    GLOBAL.enable();
}

/// Whether the global profiler is recording.
pub fn is_enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Opens a span on the global profiler. One relaxed atomic load when
/// profiling is off.
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &'static str) -> Span<'static> {
    GLOBAL.span(name)
}

/// Snapshot of the global profiler without resetting it.
pub fn snapshot() -> Report {
    GLOBAL.snapshot()
}

/// Takes and clears the global profiler's aggregates.
pub fn take_report() -> Report {
    GLOBAL.take_report()
}

#[cfg(feature = "count-alloc")]
fn thread_alloc_counters() -> (u64, u64) {
    alloc::thread_counters()
}

#[cfg(not(feature = "count-alloc"))]
fn thread_alloc_counters() -> (u64, u64) {
    (0, 0)
}

#[cfg(feature = "count-alloc")]
fn alloc_counting() -> bool {
    alloc::installed()
}

#[cfg(not(feature = "count-alloc"))]
fn alloc_counting() -> bool {
    false
}

/// Formats nanoseconds with an auto-scaled unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Formats a per-second rate with an auto-scaled magnitude (`K`/`M`/`G`).
pub fn fmt_rate(per_sec: f64) -> String {
    if !per_sec.is_finite() {
        return "-".into();
    }
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

/// Renders the one-line throughput summary every binary prints on
/// stderr at the end of a run:
///
/// ```
/// let line = pim_perf::throughput_line(
///     "tracesim",
///     std::time::Duration::from_millis(500),
///     &[(1_000_000, "accesses"), (4_000_000, "sim-cycles")],
/// );
/// assert_eq!(
///     line,
///     "[throughput] tracesim: 1000000 accesses (2.00 M/s), \
///      4000000 sim-cycles (8.00 M/s) in 0.50 s wall"
/// );
/// ```
pub fn throughput_line(tool: &str, wall: Duration, counts: &[(u64, &str)]) -> String {
    let secs = wall.as_secs_f64();
    let mut parts: Vec<String> = Vec::with_capacity(counts.len());
    for &(n, unit) in counts {
        let rate = if secs > 0.0 {
            format!("{}/s", fmt_rate(n as f64 / secs).trim_end())
        } else {
            "-".into()
        };
        parts.push(format!("{n} {unit} ({rate})"));
    }
    format!(
        "[throughput] {tool}: {} in {:.2} s wall",
        parts.join(", "),
        secs
    )
}

/// Host and build provenance stamped into `host_perf` blocks and
/// `BENCH_*.json` files so numbers are comparable across machines.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Hostname (from `$HOSTNAME` or `/etc/hostname`; `"unknown"` when
    /// neither exists).
    pub host: String,
    /// `std::env::consts::OS`.
    pub os: &'static str,
    /// `std::env::consts::ARCH`.
    pub arch: &'static str,
    /// Current git commit (short), read from `.git/HEAD` by walking up
    /// from the working directory; `None` outside a git checkout.
    pub commit: Option<String>,
}

impl Provenance {
    /// Wire form used inside `host_perf` blocks.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("host", Json::from(self.host.as_str())),
            ("os", Json::from(self.os)),
            ("arch", Json::from(self.arch)),
            (
                "commit",
                self.commit.as_deref().map_or(Json::Null, Json::from),
            ),
        ])
    }
}

/// Captures the current host/commit identity. Never fails: missing
/// pieces degrade to `"unknown"` / `None`.
pub fn provenance() -> Provenance {
    let host = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.is_empty())
        .or_else(|| {
            std::fs::read_to_string("/etc/hostname")
                .ok()
                .map(|s| s.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_string());
    Provenance {
        host,
        os: std::env::consts::OS,
        arch: std::env::consts::ARCH,
        commit: git_commit(),
    }
}

/// Resolves HEAD to a short commit hash by reading `.git` files — no
/// subprocess, so it works in sandboxes without `git` on PATH.
fn git_commit() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git/HEAD");
        if let Ok(text) = std::fs::read_to_string(&head) {
            let text = text.trim();
            let full = if let Some(reference) = text.strip_prefix("ref: ") {
                let direct = dir.join(".git").join(reference);
                if let Ok(hash) = std::fs::read_to_string(&direct) {
                    hash.trim().to_string()
                } else {
                    // The ref may only exist packed.
                    let packed = std::fs::read_to_string(dir.join(".git/packed-refs")).ok()?;
                    packed
                        .lines()
                        .filter(|l| !l.starts_with('#') && !l.starts_with('^'))
                        .find_map(|l| {
                            let (hash, name) = l.split_once(' ')?;
                            (name == reference).then(|| hash.to_string())
                        })?
                }
            } else {
                text.to_string() // detached HEAD
            };
            let short: String = full.chars().take(12).collect();
            return (short.len() == 12 && short.chars().all(|c| c.is_ascii_hexdigit()))
                .then_some(short);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let p = Profiler::new();
        {
            let _a = p.span("engine run");
            let _b = p.span("gc");
        }
        assert_eq!(p.open_spans(), 0);
        let r = p.snapshot();
        assert_eq!(r.phases.len(), 0);
        assert_eq!(r.wall_ns, 0);
    }

    #[test]
    fn nested_spans_split_self_and_total() {
        let p = Profiler::new();
        p.enable();
        {
            let _outer = p.span("engine run");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = p.span("gc");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let r = p.take_report();
        let outer = r.phases.iter().find(|s| s.name == "engine run").unwrap();
        let inner = r.phases.iter().find(|s| s.name == "gc").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns);
        assert!(inner.self_ns <= inner.total_ns);
        // take_report cleared the aggregate.
        assert!(p.take_report().phases.is_empty());
    }

    #[test]
    fn sibling_spans_aggregate_counts() {
        let p = Profiler::new();
        p.enable();
        for _ in 0..10 {
            let _s = p.span("coordinator replay");
        }
        let r = p.snapshot();
        let s = &r.phases[0];
        assert_eq!((s.name, s.count), ("coordinator replay", 10));
        assert!(s.self_ns <= s.total_ns);
    }

    #[test]
    fn spans_on_worker_threads_are_tracked_independently() {
        let p = Profiler::new();
        p.enable();
        std::thread::scope(|scope| {
            let _main = p.span("engine run");
            for _ in 0..4 {
                scope.spawn(|| {
                    let _s = p.span("epoch barrier");
                    std::thread::sleep(Duration::from_millis(1));
                });
            }
        });
        assert_eq!(p.open_spans(), 0);
        let r = p.snapshot();
        let barrier = r.phases.iter().find(|s| s.name == "epoch barrier").unwrap();
        assert_eq!(barrier.count, 4);
        // Worker spans never nested under the main thread's span, so the
        // main span's self time is its own lifetime.
        let main = r.phases.iter().find(|s| s.name == "engine run").unwrap();
        assert_eq!(main.self_ns, main.total_ns);
    }

    #[test]
    fn report_json_is_shaped() {
        let p = Profiler::new();
        p.enable();
        drop(p.span("gc"));
        let j = p.snapshot().to_json().to_string_compact();
        assert!(j.contains("\"wall_ns\""), "{j}");
        assert!(j.contains("\"phases\""), "{j}");
        assert!(j.contains("\"name\":\"gc\""), "{j}");
        assert!(j.contains("\"self_ns\""), "{j}");
    }

    #[test]
    fn throughput_line_formats_rates() {
        let line = throughput_line(
            "tracesim",
            Duration::from_millis(500),
            &[(1_000_000, "accesses"), (4_000_000, "sim-cycles")],
        );
        assert_eq!(
            line,
            "[throughput] tracesim: 1000000 accesses (2.00 M/s), \
             4000000 sim-cycles (8.00 M/s) in 0.50 s wall"
        );
    }

    #[test]
    fn rate_and_ns_formatting() {
        assert_eq!(fmt_rate(1.5e9), "1.50 G");
        assert_eq!(fmt_rate(2.5e3), "2.50 K");
        assert_eq!(fmt_rate(12.0), "12.0 ");
        assert_eq!(fmt_ns(1.5e9), "1.500 s");
        assert_eq!(fmt_ns(250.0), "250 ns");
    }

    #[test]
    fn provenance_never_fails() {
        let p = provenance();
        assert!(!p.host.is_empty());
        let j = p.to_json().to_string_compact();
        assert!(j.contains("\"os\""), "{j}");
    }
}
