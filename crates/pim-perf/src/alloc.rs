//! Counting global allocator (behind the `count-alloc` feature).
//!
//! Wraps [`std::alloc::System`] and counts allocations and bytes in
//! thread-local cells, which the span machinery snapshots on enter/exit
//! to attribute allocation traffic per phase. Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pim_perf::CountingAlloc = pim_perf::CountingAlloc;
//! ```
//!
//! Counting is a pair of thread-local `Cell` bumps per allocation —
//! no atomics on the hot path, no locks, and the cells are const-
//! initialized so the accounting itself never allocates or recurses.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Set once the allocator observes its first allocation — i.e. the
/// binary actually installed [`CountingAlloc`]. Lets reports distinguish
/// "0 allocations" from "not counting".
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// This thread's (allocation count, byte count) counters.
pub(crate) fn thread_counters() -> (u64, u64) {
    let allocs = TL_ALLOCS.try_with(Cell::get).unwrap_or(0);
    let bytes = TL_BYTES.try_with(Cell::get).unwrap_or(0);
    (allocs, bytes)
}

/// Whether a [`CountingAlloc`] is live in this process.
pub(crate) fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

fn count(size: usize) {
    INSTALLED.store(true, Ordering::Relaxed);
    // `try_with`: the TLS slot may already be torn down during thread
    // exit; losing those few counts is fine.
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = TL_BYTES.try_with(|c| c.set(c.get().wrapping_add(size as u64)));
}

/// A [`std::alloc::GlobalAlloc`] that counts allocations per thread and
/// delegates to the system allocator.
pub struct CountingAlloc;

#[allow(unsafe_code)]
// SAFETY: pure delegation to `System`; the added counting touches only
// const-initialized thread-locals and never allocates.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        count(layout.size());
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        count(layout.size());
        unsafe { std::alloc::System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}
